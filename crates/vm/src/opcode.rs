//! MiniVM instruction set.
//!
//! A deliberately small, EVM-flavoured stack machine: 256-bit words, contract
//! storage, calldata access, jumps with `JUMPDEST` validation, logs, and
//! revert semantics. Opcode numbers follow the EVM where an equivalent exists.

/// One MiniVM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Halt successfully with no return data.
    Stop = 0x00,
    /// Pop two, push wrapping sum.
    Add = 0x01,
    /// Pop two, push wrapping difference (`a - b`).
    Sub = 0x02,
    /// Pop two, push wrapping product.
    Mul = 0x03,
    /// Pop two, push quotient (zero when dividing by zero).
    Div = 0x04,
    /// Pop two, push remainder (zero when dividing by zero).
    Mod = 0x05,
    /// Pop two, push `a < b`.
    Lt = 0x10,
    /// Pop two, push `a > b`.
    Gt = 0x11,
    /// Pop two, push `a == b`.
    Eq = 0x12,
    /// Pop one, push `x == 0`.
    IsZero = 0x13,
    /// Pop two, push bitwise AND.
    And = 0x16,
    /// Pop two, push bitwise OR.
    Or = 0x17,
    /// Pop two, push bitwise XOR.
    Xor = 0x18,
    /// Pop one, push bitwise NOT.
    Not = 0x19,
    /// Push the caller address (20 bytes, big-endian).
    Caller = 0x30,
    /// Push the calldata length in bytes.
    CallDataSize = 0x33,
    /// Pop offset, push 32 calldata bytes from it (zero padded).
    CallDataLoad = 0x35,
    /// Push the block timestamp (nanoseconds).
    Timestamp = 0x42,
    /// Push the block number.
    Number = 0x43,
    /// Discard the top of stack.
    Pop = 0x50,
    /// Pop key, push storage value.
    SLoad = 0x54,
    /// Pop key then value, write storage.
    SStore = 0x55,
    /// Pop destination, jump (must be a `JumpDest`).
    Jump = 0x56,
    /// Pop destination then condition, jump if condition ≠ 0.
    JumpI = 0x57,
    /// Push the current program counter.
    Pc = 0x58,
    /// Valid jump target marker (no-op).
    JumpDest = 0x5B,
    /// Push an 8-byte big-endian immediate.
    Push8 = 0x60,
    /// Push a 32-byte big-endian immediate.
    Push32 = 0x7F,
    /// Duplicate the top of stack.
    Dup1 = 0x80,
    /// Duplicate the second stack item.
    Dup2 = 0x81,
    /// Swap the top two stack items.
    Swap1 = 0x90,
    /// Pop topic then data word, emit a log entry.
    Log1 = 0xA0,
    /// Pop a count `n`, then `n` words; halt returning their bytes.
    Return = 0xF3,
    /// Halt, reverting all state changes.
    Revert = 0xFD,
}

impl Opcode {
    /// Decodes a byte into an opcode.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x00 => Stop,
            0x01 => Add,
            0x02 => Sub,
            0x03 => Mul,
            0x04 => Div,
            0x05 => Mod,
            0x10 => Lt,
            0x11 => Gt,
            0x12 => Eq,
            0x13 => IsZero,
            0x16 => And,
            0x17 => Or,
            0x18 => Xor,
            0x19 => Not,
            0x30 => Caller,
            0x33 => CallDataSize,
            0x35 => CallDataLoad,
            0x42 => Timestamp,
            0x43 => Number,
            0x50 => Pop,
            0x54 => SLoad,
            0x55 => SStore,
            0x56 => Jump,
            0x57 => JumpI,
            0x58 => Pc,
            0x5B => JumpDest,
            0x60 => Push8,
            0x7F => Push32,
            0x80 => Dup1,
            0x81 => Dup2,
            0x90 => Swap1,
            0xA0 => Log1,
            0xF3 => Return,
            0xFD => Revert,
            _ => return None,
        })
    }

    /// Length of the immediate operand following this opcode in the bytecode.
    pub fn immediate_len(self) -> usize {
        match self {
            Opcode::Push8 => 8,
            Opcode::Push32 => 32,
            _ => 0,
        }
    }

    /// Base gas cost of the instruction (storage ops add surcharges at
    /// execution time).
    pub fn base_gas(self) -> u64 {
        match self {
            Opcode::Stop | Opcode::JumpDest => 1,
            Opcode::SLoad => 200,
            Opcode::SStore => 5_000,
            Opcode::Log1 => 375,
            Opcode::Jump | Opcode::JumpI => 8,
            _ => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_for_all_opcodes() {
        let all = [
            Opcode::Stop,
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::Div,
            Opcode::Mod,
            Opcode::Lt,
            Opcode::Gt,
            Opcode::Eq,
            Opcode::IsZero,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Not,
            Opcode::Caller,
            Opcode::CallDataSize,
            Opcode::CallDataLoad,
            Opcode::Timestamp,
            Opcode::Number,
            Opcode::Pop,
            Opcode::SLoad,
            Opcode::SStore,
            Opcode::Jump,
            Opcode::JumpI,
            Opcode::Pc,
            Opcode::JumpDest,
            Opcode::Push8,
            Opcode::Push32,
            Opcode::Dup1,
            Opcode::Dup2,
            Opcode::Swap1,
            Opcode::Log1,
            Opcode::Return,
            Opcode::Revert,
        ];
        for op in all {
            assert_eq!(Opcode::from_byte(op as u8), Some(op));
        }
    }

    #[test]
    fn unknown_bytes_decode_to_none() {
        assert_eq!(Opcode::from_byte(0xFE), None);
        assert_eq!(Opcode::from_byte(0x99), None);
    }

    #[test]
    fn immediates() {
        assert_eq!(Opcode::Push8.immediate_len(), 8);
        assert_eq!(Opcode::Push32.immediate_len(), 32);
        assert_eq!(Opcode::Add.immediate_len(), 0);
    }

    #[test]
    fn storage_ops_cost_more() {
        assert!(Opcode::SStore.base_gas() > Opcode::SLoad.base_gas());
        assert!(Opcode::SLoad.base_gas() > Opcode::Add.base_gas());
    }
}
