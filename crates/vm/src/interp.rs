//! The MiniVM interpreter.

use blockfed_chain::{CallContext, ExecOutcome, LogEntry, State};
use blockfed_crypto::{H256, U256};

use crate::opcode::Opcode;

/// Extra gas charged when an `SSTORE` turns a zero slot non-zero (mirrors the
/// EVM's cold-write surcharge).
pub const SSTORE_INIT_SURCHARGE: u64 = 15_000;
/// Maximum stack depth.
pub const STACK_LIMIT: usize = 1024;
/// Maximum words a `RETURN` may emit.
pub const RETURN_LIMIT: u64 = 16;

/// Why execution stopped abnormally (folded into a revert outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    OutOfGas,
    StackUnderflow,
    StackOverflow,
    InvalidOpcode,
    InvalidJump,
    TruncatedImmediate,
    ReturnTooLarge,
    Reverted,
}

/// Executes MiniVM bytecode under a call context.
///
/// Any fault (bad opcode, stack underflow, invalid jump, out of gas) produces a
/// reverted [`ExecOutcome`]; the chain's executor rolls the state back.
pub fn run(ctx: &CallContext, code: &[u8], state: &mut State) -> ExecOutcome {
    let mut stack: Vec<U256> = Vec::with_capacity(32);
    let mut logs: Vec<LogEntry> = Vec::new();
    let mut gas_used: u64 = 0;
    let mut pc: usize = 0;

    // Pre-scan valid jump destinations (must not sit inside an immediate).
    let mut jumpdests = vec![false; code.len()];
    {
        let mut i = 0usize;
        while i < code.len() {
            match Opcode::from_byte(code[i]) {
                Some(Opcode::JumpDest) => {
                    jumpdests[i] = true;
                    i += 1;
                }
                Some(op) => i += 1 + op.immediate_len(),
                None => i += 1,
            }
        }
    }

    macro_rules! fault {
        ($f:expr) => {{
            let f: Fault = $f;
            let gas = if f == Fault::OutOfGas {
                ctx.gas_budget
            } else {
                gas_used
            };
            return ExecOutcome {
                success: false,
                gas_used: gas,
                output: Vec::new(),
                logs: Vec::new(),
            };
        }};
    }

    macro_rules! pop {
        () => {
            match stack.pop() {
                Some(v) => v,
                None => fault!(Fault::StackUnderflow),
            }
        };
    }

    macro_rules! push {
        ($v:expr) => {{
            if stack.len() >= STACK_LIMIT {
                fault!(Fault::StackOverflow);
            }
            stack.push($v);
        }};
    }

    loop {
        if pc >= code.len() {
            // Running off the end halts successfully, like STOP.
            return ExecOutcome {
                success: true,
                gas_used,
                output: Vec::new(),
                logs,
            };
        }
        let op = match Opcode::from_byte(code[pc]) {
            Some(op) => op,
            None => fault!(Fault::InvalidOpcode),
        };
        let mut cost = op.base_gas();
        // Look ahead for the SSTORE surcharge before charging.
        if op == Opcode::SStore {
            if let (Some(key), Some(_value)) = (
                stack.len().checked_sub(1).map(|i| stack[i]),
                stack.len().checked_sub(2).map(|i| stack[i]),
            ) {
                let slot = H256::from_bytes(key.to_be_bytes());
                if state.storage_get(&ctx.contract, &slot).is_zero() {
                    cost += SSTORE_INIT_SURCHARGE;
                }
            }
        }
        if gas_used.saturating_add(cost) > ctx.gas_budget {
            fault!(Fault::OutOfGas);
        }
        gas_used += cost;

        match op {
            Opcode::Stop => {
                return ExecOutcome {
                    success: true,
                    gas_used,
                    output: Vec::new(),
                    logs,
                };
            }
            Opcode::Add => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_add(b));
            }
            Opcode::Sub => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_sub(b));
            }
            Opcode::Mul => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_mul(b));
            }
            Opcode::Div => {
                let b = pop!();
                let a = pop!();
                push!(if b.is_zero() {
                    U256::ZERO
                } else {
                    a.div_rem(b).0
                });
            }
            Opcode::Mod => {
                let b = pop!();
                let a = pop!();
                push!(if b.is_zero() {
                    U256::ZERO
                } else {
                    a.div_rem(b).1
                });
            }
            Opcode::Lt => {
                let b = pop!();
                let a = pop!();
                push!(if a < b { U256::ONE } else { U256::ZERO });
            }
            Opcode::Gt => {
                let b = pop!();
                let a = pop!();
                push!(if a > b { U256::ONE } else { U256::ZERO });
            }
            Opcode::Eq => {
                let b = pop!();
                let a = pop!();
                push!(if a == b { U256::ONE } else { U256::ZERO });
            }
            Opcode::IsZero => {
                let a = pop!();
                push!(if a.is_zero() { U256::ONE } else { U256::ZERO });
            }
            Opcode::And => {
                let b = pop!();
                let a = pop!();
                push!(a & b);
            }
            Opcode::Or => {
                let b = pop!();
                let a = pop!();
                push!(a | b);
            }
            Opcode::Xor => {
                let b = pop!();
                let a = pop!();
                push!(a ^ b);
            }
            Opcode::Not => {
                let a = pop!();
                push!(!a);
            }
            Opcode::Caller => {
                let mut bytes = [0u8; 32];
                bytes[12..].copy_from_slice(ctx.caller.as_bytes());
                push!(U256::from_be_bytes(bytes));
            }
            Opcode::CallDataSize => {
                push!(U256::from_u64(ctx.calldata.len() as u64));
            }
            Opcode::CallDataLoad => {
                let offset = pop!();
                let mut word = [0u8; 32];
                if offset.bits() <= 32 {
                    let off = offset.low_u64() as usize;
                    for (i, slot) in word.iter_mut().enumerate() {
                        if let Some(&b) = ctx.calldata.get(off + i) {
                            *slot = b;
                        }
                    }
                }
                push!(U256::from_be_bytes(word));
            }
            Opcode::Timestamp => push!(U256::from_u64(ctx.timestamp_ns)),
            Opcode::Number => push!(U256::from_u64(ctx.block_number)),
            Opcode::Pop => {
                let _ = pop!();
            }
            Opcode::SLoad => {
                let key = pop!();
                let slot = H256::from_bytes(key.to_be_bytes());
                let value = state.storage_get(&ctx.contract, &slot);
                push!(U256::from_be_bytes(value.to_bytes()));
            }
            Opcode::SStore => {
                let key = pop!();
                let value = pop!();
                state.storage_set(
                    ctx.contract,
                    H256::from_bytes(key.to_be_bytes()),
                    H256::from_bytes(value.to_be_bytes()),
                );
            }
            Opcode::Jump => {
                let dest = pop!();
                let d = dest.low_u64() as usize;
                if dest.bits() > 32 || d >= code.len() || !jumpdests[d] {
                    fault!(Fault::InvalidJump);
                }
                pc = d;
                continue;
            }
            Opcode::JumpI => {
                let dest = pop!();
                let cond = pop!();
                if !cond.is_zero() {
                    let d = dest.low_u64() as usize;
                    if dest.bits() > 32 || d >= code.len() || !jumpdests[d] {
                        fault!(Fault::InvalidJump);
                    }
                    pc = d;
                    continue;
                }
            }
            Opcode::Pc => push!(U256::from_u64(pc as u64)),
            Opcode::JumpDest => {}
            Opcode::Push8 => {
                if pc + 9 > code.len() {
                    fault!(Fault::TruncatedImmediate);
                }
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&code[pc + 1..pc + 9]);
                push!(U256::from_u64(u64::from_be_bytes(bytes)));
            }
            Opcode::Push32 => {
                if pc + 33 > code.len() {
                    fault!(Fault::TruncatedImmediate);
                }
                let mut bytes = [0u8; 32];
                bytes.copy_from_slice(&code[pc + 1..pc + 33]);
                push!(U256::from_be_bytes(bytes));
            }
            Opcode::Dup1 => {
                let a = match stack.last() {
                    Some(v) => *v,
                    None => fault!(Fault::StackUnderflow),
                };
                push!(a);
            }
            Opcode::Dup2 => {
                if stack.len() < 2 {
                    fault!(Fault::StackUnderflow);
                }
                let a = stack[stack.len() - 2];
                push!(a);
            }
            Opcode::Swap1 => {
                let n = stack.len();
                if n < 2 {
                    fault!(Fault::StackUnderflow);
                }
                stack.swap(n - 1, n - 2);
            }
            Opcode::Log1 => {
                let topic = pop!();
                let data = pop!();
                logs.push(LogEntry {
                    address: ctx.contract,
                    topic: H256::from_bytes(topic.to_be_bytes()),
                    data: data.to_be_bytes().to_vec(),
                });
            }
            Opcode::Return => {
                let count = pop!();
                if count.bits() > 8 || count.low_u64() > RETURN_LIMIT {
                    fault!(Fault::ReturnTooLarge);
                }
                let n = count.low_u64() as usize;
                if stack.len() < n {
                    fault!(Fault::StackUnderflow);
                }
                let mut output = Vec::with_capacity(n * 32);
                for _ in 0..n {
                    let w = stack.pop().expect("length checked");
                    output.extend_from_slice(&w.to_be_bytes());
                }
                return ExecOutcome {
                    success: true,
                    gas_used,
                    output,
                    logs,
                };
            }
            Opcode::Revert => fault!(Fault::Reverted),
        }
        pc += 1 + op.immediate_len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use blockfed_crypto::H160;

    fn ctx(calldata: Vec<u8>) -> CallContext {
        let mut contract = [0u8; 20];
        contract[0] = 0xCC;
        let mut caller = [0u8; 20];
        caller[0] = 0xAA;
        CallContext {
            caller: H160::from_bytes(caller),
            contract: H160::from_bytes(contract),
            calldata,
            gas_budget: 1_000_000,
            block_number: 7,
            timestamp_ns: 13_000,
        }
    }

    fn exec(src: &str, calldata: Vec<u8>) -> (ExecOutcome, State) {
        let mut state = State::new();
        let out = run(&ctx(calldata), &assemble(src).unwrap(), &mut state);
        (out, state)
    }

    fn word(out: &ExecOutcome) -> U256 {
        assert!(out.success, "execution failed");
        assert_eq!(out.output.len(), 32);
        let mut b = [0u8; 32];
        b.copy_from_slice(&out.output);
        U256::from_be_bytes(b)
    }

    #[test]
    fn arithmetic() {
        let (out, _) = exec("PUSH8 7\nPUSH8 5\nADD\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(12));
        let (out, _) = exec("PUSH8 7\nPUSH8 5\nSUB\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(2));
        let (out, _) = exec("PUSH8 6\nPUSH8 7\nMUL\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(42));
        let (out, _) = exec("PUSH8 20\nPUSH8 6\nDIV\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(3));
        let (out, _) = exec("PUSH8 20\nPUSH8 6\nMOD\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(2));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let (out, _) = exec("PUSH8 5\nPUSH8 0\nDIV\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::ZERO);
        let (out, _) = exec("PUSH8 5\nPUSH8 0\nMOD\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::ZERO);
    }

    #[test]
    fn comparisons_and_logic() {
        let (out, _) = exec("PUSH8 3\nPUSH8 5\nLT\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::ONE);
        let (out, _) = exec("PUSH8 3\nPUSH8 5\nGT\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::ZERO);
        let (out, _) = exec("PUSH8 5\nPUSH8 5\nEQ\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::ONE);
        let (out, _) = exec("PUSH8 0\nISZERO\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::ONE);
        let (out, _) = exec("PUSH8 12\nPUSH8 10\nAND\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(8));
        let (out, _) = exec("PUSH8 12\nPUSH8 10\nXOR\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(6));
    }

    #[test]
    fn storage_persists_within_and_across_runs() {
        // slot 9 = 41; slot 9 += 1; return slot 9.
        let src = "PUSH8 41\nPUSH8 9\nSSTORE\nPUSH8 9\nSLOAD\nPUSH8 1\nADD\nPUSH8 9\nSSTORE\nPUSH8 9\nSLOAD\nPUSH8 1\nRETURN";
        let (out, state) = exec(src, vec![]);
        assert_eq!(word(&out), U256::from_u64(42));
        // Value visible in state afterwards.
        let key = H256::from_bytes(U256::from_u64(9).to_be_bytes());
        let stored = state.storage_get(&ctx(vec![]).contract, &key);
        assert_eq!(U256::from_be_bytes(stored.to_bytes()), U256::from_u64(42));
    }

    #[test]
    fn calldata_access() {
        let mut data = vec![0u8; 32];
        data[31] = 99;
        let (out, _) = exec("PUSH8 0\nCALLDATALOAD\nPUSH8 1\nRETURN", data.clone());
        assert_eq!(word(&out), U256::from_u64(99));
        let (out, _) = exec("CALLDATASIZE\nPUSH8 1\nRETURN", data);
        assert_eq!(word(&out), U256::from_u64(32));
        // Past-the-end load is zero padded.
        let (out, _) = exec("PUSH8 100\nCALLDATALOAD\nPUSH8 1\nRETURN", vec![1, 2, 3]);
        assert_eq!(word(&out), U256::ZERO);
    }

    #[test]
    fn environment_opcodes() {
        let (out, _) = exec("NUMBER\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(7));
        let (out, _) = exec("TIMESTAMP\nPUSH8 1\nRETURN", vec![]);
        assert_eq!(word(&out), U256::from_u64(13_000));
        let (out, _) = exec("CALLER\nPUSH8 1\nRETURN", vec![]);
        let mut expect = [0u8; 32];
        expect[12] = 0xAA;
        assert_eq!(word(&out), U256::from_be_bytes(expect));
    }

    #[test]
    fn jumps_loop_and_terminate() {
        // Sum 1..=5 with a loop: slot0 = acc, slot1 = i.
        let src = "\
PUSH8 5
PUSH8 1
SSTORE
loop:
JUMPDEST
PUSH8 1
SLOAD
ISZERO
PUSH8 @exit
JUMPI
PUSH8 0
SLOAD
PUSH8 1
SLOAD
ADD
PUSH8 0
SSTORE
PUSH8 1
SLOAD
PUSH8 1
SUB
PUSH8 1
SSTORE
PUSH8 @loop
JUMP
exit:
JUMPDEST
PUSH8 0
SLOAD
PUSH8 1
RETURN";
        let (out, _) = exec(src, vec![]);
        assert_eq!(word(&out), U256::from_u64(15));
    }

    #[test]
    fn invalid_jump_reverts() {
        let (out, _) = exec("PUSH8 3\nJUMP\nSTOP", vec![]);
        assert!(!out.success);
    }

    #[test]
    fn jump_into_immediate_rejected() {
        // Destination 1 is inside the PUSH8 immediate, not a JUMPDEST.
        let (out, _) = exec("PUSH8 1\nJUMP", vec![]);
        assert!(!out.success);
    }

    #[test]
    fn stack_underflow_reverts() {
        let (out, _) = exec("ADD", vec![]);
        assert!(!out.success);
        let (out, _) = exec("POP", vec![]);
        assert!(!out.success);
    }

    #[test]
    fn invalid_opcode_reverts() {
        let mut state = State::new();
        let out = run(&ctx(vec![]), &[0xFE], &mut state);
        assert!(!out.success);
    }

    #[test]
    fn explicit_revert() {
        let (out, state) = exec("PUSH8 1\nPUSH8 0\nSSTORE\nREVERT", vec![]);
        assert!(!out.success);
        assert!(out.gas_used > 0);
        // Interpreter-level state is mutated; the chain executor rolls it back.
        let _ = state;
    }

    #[test]
    fn out_of_gas_consumes_budget() {
        let mut state = State::new();
        let mut c = ctx(vec![]);
        c.gas_budget = 10;
        // An SSTORE costs far more than 10 gas.
        let code = assemble("PUSH8 1\nPUSH8 0\nSSTORE").unwrap();
        let out = run(&c, &code, &mut state);
        assert!(!out.success);
        assert_eq!(out.gas_used, 10, "out-of-gas burns the whole budget");
    }

    #[test]
    fn gas_accounting_includes_sstore_surcharge() {
        // First write to a zero slot pays the init surcharge; rewriting does not.
        let (out1, _) = exec("PUSH8 1\nPUSH8 0\nSSTORE", vec![]);
        let (out2, _) = exec("PUSH8 1\nPUSH8 0\nSSTORE\nPUSH8 2\nPUSH8 0\nSSTORE", vec![]);
        let first_write = out1.gas_used;
        let second_write = out2.gas_used - first_write;
        assert!(
            first_write > second_write,
            "{first_write} vs {second_write}"
        );
    }

    #[test]
    fn dup_and_swap() {
        let (out, _) = exec("PUSH8 1\nPUSH8 2\nDUP2\nADD\nADD\nPUSH8 1\nRETURN", vec![]);
        // stack: 1,2 -> dup2: 1,2,1 -> add: 1,3 -> add: 4
        assert_eq!(word(&out), U256::from_u64(4));
        let (out, _) = exec("PUSH8 10\nPUSH8 3\nSWAP1\nSUB\nPUSH8 1\nRETURN", vec![]);
        // stack: 10,3 -> swap: 3,10 -> sub: 3-10 wraps... a=3? pop order: b=10,a=3 => 3-10 wraps.
        assert_eq!(
            word(&out),
            U256::from_u64(3).wrapping_sub(U256::from_u64(10))
        );
    }

    #[test]
    fn logs_are_emitted() {
        let (out, _) = exec("PUSH8 77\nPUSH8 5\nLOG1\nSTOP", vec![]);
        assert!(out.success);
        assert_eq!(out.logs.len(), 1);
        assert_eq!(
            out.logs[0].topic,
            H256::from_bytes(U256::from_u64(5).to_be_bytes())
        );
    }

    #[test]
    fn running_off_the_end_is_stop() {
        let (out, _) = exec("PUSH8 1", vec![]);
        assert!(out.success);
        assert!(out.output.is_empty());
    }

    #[test]
    fn return_multiple_words() {
        let (out, _) = exec("PUSH8 1\nPUSH8 2\nPUSH8 2\nRETURN", vec![]);
        assert!(out.success);
        assert_eq!(out.output.len(), 64);
        // Top of stack first: word0 = 2, word1 = 1.
        assert_eq!(out.output[31], 2);
        assert_eq!(out.output[63], 1);
    }

    #[test]
    fn truncated_immediate_reverts() {
        let mut state = State::new();
        let out = run(&ctx(vec![]), &[Opcode::Push8 as u8, 1, 2], &mut state);
        assert!(!out.success);
    }
}
