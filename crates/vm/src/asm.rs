//! A tiny MiniVM assembler: one instruction per line, `;` comments, `name:`
//! labels, and `@name` label references in `PUSH8` operands.
//!
//! Exists so contracts and tests are written in readable mnemonics instead of
//! hand-counted byte offsets.

use std::collections::HashMap;

use blockfed_crypto::U256;

use crate::opcode::Opcode;

/// Error assembling MiniVM source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown mnemonic.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The instruction's operand is missing or malformed.
    BadOperand {
        /// 1-based source line.
        line: usize,
    },
    /// A `@label` reference has no definition.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// The same label is defined twice.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, token } => {
                write!(f, "line {line}: unknown mnemonic `{token}`")
            }
            AsmError::BadOperand { line } => write!(f, "line {line}: bad operand"),
            AsmError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
        }
    }
}

impl std::error::Error for AsmError {}

fn mnemonic_to_opcode(m: &str) -> Option<Opcode> {
    Some(match m.to_ascii_uppercase().as_str() {
        "STOP" => Opcode::Stop,
        "ADD" => Opcode::Add,
        "SUB" => Opcode::Sub,
        "MUL" => Opcode::Mul,
        "DIV" => Opcode::Div,
        "MOD" => Opcode::Mod,
        "LT" => Opcode::Lt,
        "GT" => Opcode::Gt,
        "EQ" => Opcode::Eq,
        "ISZERO" => Opcode::IsZero,
        "AND" => Opcode::And,
        "OR" => Opcode::Or,
        "XOR" => Opcode::Xor,
        "NOT" => Opcode::Not,
        "CALLER" => Opcode::Caller,
        "CALLDATASIZE" => Opcode::CallDataSize,
        "CALLDATALOAD" => Opcode::CallDataLoad,
        "TIMESTAMP" => Opcode::Timestamp,
        "NUMBER" => Opcode::Number,
        "POP" => Opcode::Pop,
        "SLOAD" => Opcode::SLoad,
        "SSTORE" => Opcode::SStore,
        "JUMP" => Opcode::Jump,
        "JUMPI" => Opcode::JumpI,
        "PC" => Opcode::Pc,
        "JUMPDEST" => Opcode::JumpDest,
        "PUSH8" | "PUSH" => Opcode::Push8,
        "PUSH32" => Opcode::Push32,
        "DUP1" => Opcode::Dup1,
        "DUP2" => Opcode::Dup2,
        "SWAP1" => Opcode::Swap1,
        "LOG1" => Opcode::Log1,
        "RETURN" => Opcode::Return,
        "REVERT" => Opcode::Revert,
        _ => return None,
    })
}

enum Operand {
    None,
    Value(U256),
    Label(String),
}

/// Assembles MiniVM source into bytecode.
///
/// # Errors
///
/// Returns [`AsmError`] on unknown mnemonics, malformed operands, and
/// undefined or duplicate labels.
///
/// # Examples
///
/// ```
/// use blockfed_vm::asm::assemble;
///
/// let code = assemble("PUSH8 1\nPUSH8 2\nADD\nPUSH8 1\nRETURN")?;
/// assert!(!code.is_empty());
/// # Ok::<(), blockfed_vm::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    struct Item {
        op: Opcode,
        operand: Operand,
        line: usize,
    }

    let mut items = Vec::new();
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut offset: u64 = 0;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Leading label definitions ("name:").
        while let Some(colon) = rest.find(':') {
            let (candidate, after) = rest.split_at(colon);
            let candidate = candidate.trim();
            if candidate.is_empty() || candidate.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(candidate.to_owned(), offset).is_some() {
                return Err(AsmError::DuplicateLabel {
                    label: candidate.to_owned(),
                });
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().expect("nonempty");
        let op = mnemonic_to_opcode(mnemonic).ok_or_else(|| AsmError::UnknownMnemonic {
            line,
            token: mnemonic.to_owned(),
        })?;
        let operand = match op.immediate_len() {
            0 => {
                if parts.next().is_some() {
                    return Err(AsmError::BadOperand { line });
                }
                Operand::None
            }
            _ => {
                let tok = parts.next().ok_or(AsmError::BadOperand { line })?;
                if parts.next().is_some() {
                    return Err(AsmError::BadOperand { line });
                }
                if let Some(label) = tok.strip_prefix('@') {
                    Operand::Label(label.to_owned())
                } else if let Some(hex) = tok.strip_prefix("0x") {
                    Operand::Value(U256::from_hex(hex).ok_or(AsmError::BadOperand { line })?)
                } else {
                    let v: u128 = tok.parse().map_err(|_| AsmError::BadOperand { line })?;
                    Operand::Value(U256::from_u128(v))
                }
            }
        };
        offset += 1 + op.immediate_len() as u64;
        items.push(Item { op, operand, line });
    }

    let mut code = Vec::with_capacity(offset as usize);
    for item in items {
        code.push(item.op as u8);
        match (&item.operand, item.op.immediate_len()) {
            (Operand::None, 0) => {}
            (Operand::Value(v), 8) => {
                if v.bits() > 64 {
                    return Err(AsmError::BadOperand { line: item.line });
                }
                code.extend_from_slice(&v.low_u64().to_be_bytes());
            }
            (Operand::Value(v), 32) => code.extend_from_slice(&v.to_be_bytes()),
            (Operand::Label(l), width) => {
                let dest = *labels
                    .get(l.as_str())
                    .ok_or_else(|| AsmError::UndefinedLabel { label: l.clone() })?;
                if width == 8 {
                    code.extend_from_slice(&dest.to_be_bytes());
                } else {
                    code.extend_from_slice(&U256::from_u64(dest).to_be_bytes());
                }
            }
            _ => return Err(AsmError::BadOperand { line: item.line }),
        }
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_program() {
        let code = assemble("PUSH8 5\nPUSH8 3\nADD").unwrap();
        assert_eq!(code.len(), 9 + 9 + 1);
        assert_eq!(code[0], Opcode::Push8 as u8);
        assert_eq!(code[8], 5);
        assert_eq!(code[18], Opcode::Add as u8);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble("; a comment\n\nSTOP ; trailing\n").unwrap();
        assert_eq!(code, vec![Opcode::Stop as u8]);
    }

    #[test]
    fn hex_and_decimal_operands() {
        let code = assemble("PUSH8 0xff").unwrap();
        assert_eq!(code[8], 255);
        let code = assemble("PUSH8 255").unwrap();
        assert_eq!(code[8], 255);
        let code = assemble("PUSH32 0xdeadbeef").unwrap();
        assert_eq!(code.len(), 33);
        assert_eq!(&code[29..33], &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn labels_resolve_to_offsets() {
        let code = assemble("start:\nPUSH8 @end\nJUMP\nend:\nJUMPDEST\nSTOP").unwrap();
        // PUSH8 (9 bytes) + JUMP (1) = offset 10 for `end`.
        assert_eq!(code[8], 10);
        assert_eq!(code[10], Opcode::JumpDest as u8);
    }

    #[test]
    fn forward_and_backward_labels() {
        let src = "loop:\nJUMPDEST\nPUSH8 @loop\nJUMP";
        let code = assemble(src).unwrap();
        assert_eq!(code[9], 0, "backward label points at offset 0");
    }

    #[test]
    fn errors() {
        assert!(matches!(
            assemble("BOGUS"),
            Err(AsmError::UnknownMnemonic { line: 1, .. })
        ));
        assert_eq!(assemble("PUSH8"), Err(AsmError::BadOperand { line: 1 }));
        assert_eq!(assemble("PUSH8 zz"), Err(AsmError::BadOperand { line: 1 }));
        assert_eq!(assemble("ADD 5"), Err(AsmError::BadOperand { line: 1 }));
        assert!(matches!(
            assemble("PUSH8 @nowhere\nJUMP"),
            Err(AsmError::UndefinedLabel { .. })
        ));
        assert!(matches!(
            assemble("a:\nSTOP\na:\nSTOP"),
            Err(AsmError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = assemble("BOGUS").unwrap_err();
        assert!(e.to_string().contains("BOGUS"));
        assert!(AsmError::BadOperand { line: 3 }.to_string().contains('3'));
        assert!(AsmError::UndefinedLabel { label: "x".into() }
            .to_string()
            .contains('x'));
        assert!(AsmError::DuplicateLabel { label: "y".into() }
            .to_string()
            .contains('y'));
    }
}
