//! The federated-learning registry contract — the system's on-chain heart.
//!
//! This is the Rust-native equivalent of the paper's Solidity aggregation
//! contract: participants register, publish local model fingerprints per
//! communication round, and record which combination they aggregated. The
//! chain's ordering plus the transaction signatures give the paper's Case 3
//! (non-repudiation): nobody can later deny having published a model.
//!
//! ## ABI
//!
//! Calldata is `[method: u8][little-endian args…]`:
//!
//! | method | name | args | returns |
//! |---|---|---|---|
//! | 0 | `register` | — | participant index (u64 LE) |
//! | 1 | `submit_model` | round u32, model_hash 32B, payload_bytes u64, sample_count u64 | submission index (u64 LE) |
//! | 2 | `round_count` | round u32 | count (u64 LE) |
//! | 3 | `get_submission` | round u32, index u64 | sender 20B ‖ model_hash 32B ‖ payload u64 ‖ samples u64 |
//! | 4 | `record_aggregate` | round u32, mask_len u8, mask bytes (LE bitset, ≤ 128B), agg_hash 32B | — |
//! | 5 | `participant_count` | — | count (u64 LE) |
//! | 6 | `get_aggregate` | round u32, aggregator 20B | agg_hash 32B ‖ mask_len u8 ‖ mask bytes |
//!
//! The combination mask is a variable-width [`ComboMask`]: a length-prefixed
//! little-endian bitset over participant indices (up to
//! [`crate::mask::MAX_MASK_BITS`] participants). Storage packs it across
//! 64-bit words (`.mask.len` plus `.mask.w0..w3`), and the
//! `AggregateRecorded` event carries the full length-prefixed mask in its
//! data, so log consumers hash and verify the complete member set rather
//! than a 32-bit truncation.
//!
//! Reverts on malformed calldata (including non-canonical mask encodings),
//! double registration, submissions from unregistered accounts, and
//! duplicate per-round submissions.

use blockfed_chain::{CallContext, ExecOutcome, LogEntry, State};
use blockfed_crypto::sha256::{sha256, Sha256};
use blockfed_crypto::{H160, H256};

use crate::mask::{ComboMask, MASK_STORAGE_WORDS};

/// Gas charged per registry operation (flat; the dominant cost is the
/// transaction's payload gas, as configured in the paper).
pub const REGISTRY_OP_GAS: u64 = 30_000;

/// Event topic for model submissions.
pub fn topic_model_submitted() -> H256 {
    sha256(b"ModelSubmitted(round,sender,hash)")
}

/// Event topic for recorded aggregates. The signature names the
/// variable-width mask encoding, so consumers of the old fixed-width
/// `u32` topic can never mistake a truncated mask for the full member set.
pub fn topic_aggregate_recorded() -> H256 {
    sha256(b"AggregateRecorded(round,sender,mask_len,mask_bytes)")
}

/// Event topic for registrations.
pub fn topic_registered() -> H256 {
    sha256(b"Registered(sender)")
}

/// Methods of the registry, with their calldata encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryCall {
    /// Register the caller as a participant.
    Register,
    /// Publish a local model for a round.
    SubmitModel {
        /// Communication round.
        round: u32,
        /// Fingerprint of the serialized model.
        model_hash: H256,
        /// Size of the full model artifact in bytes.
        payload_bytes: u64,
        /// Training examples behind the update (FedAvg weight).
        sample_count: u64,
    },
    /// How many submissions a round has.
    RoundCount {
        /// Communication round.
        round: u32,
    },
    /// Fetch one submission.
    GetSubmission {
        /// Communication round.
        round: u32,
        /// Submission index.
        index: u64,
    },
    /// Record the aggregate the caller chose for a round.
    RecordAggregate {
        /// Communication round.
        round: u32,
        /// Variable-width bitset over participant indices included in the
        /// aggregation.
        combo_mask: ComboMask,
        /// Fingerprint of the aggregated model.
        agg_hash: H256,
    },
    /// How many participants are registered.
    ParticipantCount,
    /// Fetch the aggregate a peer recorded for a round.
    GetAggregate {
        /// Communication round.
        round: u32,
        /// The aggregator peer.
        aggregator: H160,
    },
}

impl RegistryCall {
    /// Encodes the call into calldata.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RegistryCall::Register => out.push(0),
            RegistryCall::SubmitModel {
                round,
                model_hash,
                payload_bytes,
                sample_count,
            } => {
                out.push(1);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(model_hash.as_bytes());
                out.extend_from_slice(&payload_bytes.to_le_bytes());
                out.extend_from_slice(&sample_count.to_le_bytes());
            }
            RegistryCall::RoundCount { round } => {
                out.push(2);
                out.extend_from_slice(&round.to_le_bytes());
            }
            RegistryCall::GetSubmission { round, index } => {
                out.push(3);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&index.to_le_bytes());
            }
            RegistryCall::RecordAggregate {
                round,
                combo_mask,
                agg_hash,
            } => {
                out.push(4);
                out.extend_from_slice(&round.to_le_bytes());
                combo_mask.encode_into(&mut out);
                out.extend_from_slice(agg_hash.as_bytes());
            }
            RegistryCall::ParticipantCount => out.push(5),
            RegistryCall::GetAggregate { round, aggregator } => {
                out.push(6);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(aggregator.as_bytes());
            }
        }
        out
    }

    /// Decodes calldata into a call.
    pub fn decode(data: &[u8]) -> Option<RegistryCall> {
        let (&method, rest) = data.split_first()?;
        match method {
            0 if rest.is_empty() => Some(RegistryCall::Register),
            1 => {
                if rest.len() != 4 + 32 + 8 + 8 {
                    return None;
                }
                let round = u32::from_le_bytes(rest[0..4].try_into().ok()?);
                let mut hash = [0u8; 32];
                hash.copy_from_slice(&rest[4..36]);
                let payload_bytes = u64::from_le_bytes(rest[36..44].try_into().ok()?);
                let sample_count = u64::from_le_bytes(rest[44..52].try_into().ok()?);
                Some(RegistryCall::SubmitModel {
                    round,
                    model_hash: H256::from_bytes(hash),
                    payload_bytes,
                    sample_count,
                })
            }
            2 => {
                if rest.len() != 4 {
                    return None;
                }
                Some(RegistryCall::RoundCount {
                    round: u32::from_le_bytes(rest.try_into().ok()?),
                })
            }
            3 => {
                if rest.len() != 12 {
                    return None;
                }
                Some(RegistryCall::GetSubmission {
                    round: u32::from_le_bytes(rest[0..4].try_into().ok()?),
                    index: u64::from_le_bytes(rest[4..12].try_into().ok()?),
                })
            }
            4 => {
                if rest.len() < 4 + 1 + 32 {
                    return None;
                }
                let round = u32::from_le_bytes(rest[0..4].try_into().ok()?);
                let (combo_mask, used) = ComboMask::decode_from(&rest[4..])?;
                let tail = &rest[4 + used..];
                if tail.len() != 32 {
                    return None;
                }
                let mut hash = [0u8; 32];
                hash.copy_from_slice(tail);
                Some(RegistryCall::RecordAggregate {
                    round,
                    combo_mask,
                    agg_hash: H256::from_bytes(hash),
                })
            }
            5 if rest.is_empty() => Some(RegistryCall::ParticipantCount),
            6 => {
                if rest.len() != 24 {
                    return None;
                }
                let mut addr = [0u8; 20];
                addr.copy_from_slice(&rest[4..24]);
                Some(RegistryCall::GetAggregate {
                    round: u32::from_le_bytes(rest[0..4].try_into().ok()?),
                    aggregator: H160::from_bytes(addr),
                })
            }
            _ => None,
        }
    }
}

// Storage keys are hashes of structured labels.
fn slot(parts: &[&[u8]]) -> H256 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

fn get_u64(state: &State, contract: &H160, key: &H256) -> u64 {
    let v = state.storage_get(contract, key);
    u64::from_le_bytes(v.as_bytes()[..8].try_into().expect("8 bytes"))
}

fn set_u64(state: &mut State, contract: H160, key: H256, value: u64) {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&value.to_le_bytes());
    state.storage_set(contract, key, H256::from_bytes(bytes));
}

fn set_addr(state: &mut State, contract: H160, key: H256, value: H160) {
    let mut bytes = [0u8; 32];
    bytes[..20].copy_from_slice(value.as_bytes());
    state.storage_set(contract, key, H256::from_bytes(bytes));
}

fn get_addr(state: &State, contract: &H160, key: &H256) -> H160 {
    let v = state.storage_get(contract, key);
    let mut out = [0u8; 20];
    out.copy_from_slice(&v.as_bytes()[..20]);
    H160::from_bytes(out)
}

/// Packs a mask into storage under `base`: its canonical byte length in
/// `.mask.len` and its bits across [`MASK_STORAGE_WORDS`] 64-bit words in
/// `.mask.w{i}`. Every word is written (zeroed beyond the length) so a
/// re-recorded, narrower aggregate can never resurrect stale wide bits.
fn set_mask(state: &mut State, contract: H160, base: &[u8], mask: &ComboMask) {
    set_u64(
        state,
        contract,
        slot(&[base, b".mask.len"]),
        mask.byte_len() as u64,
    );
    for (i, word) in mask.to_words().iter().enumerate() {
        set_u64(
            state,
            contract,
            slot(&[base, b".mask.w", &[i as u8]]),
            *word,
        );
    }
}

/// Reads a mask back from storage under `base`. `None` if the stored length
/// and words disagree (corrupt or never-written storage read as non-empty).
fn get_mask(state: &State, contract: &H160, base: &[u8]) -> Option<ComboMask> {
    let len = get_u64(state, contract, &slot(&[base, b".mask.len"])) as usize;
    let mut words = [0u64; MASK_STORAGE_WORDS];
    for (i, word) in words.iter_mut().enumerate() {
        *word = get_u64(state, contract, &slot(&[base, b".mask.w", &[i as u8]]));
    }
    ComboMask::from_words(&words, len)
}

/// Executes a registry call. Used both directly (by the native runtime) and by
/// tests comparing against the MiniVM path.
pub fn execute_registry(ctx: &CallContext, state: &mut State) -> ExecOutcome {
    let revert = || ExecOutcome::reverted(REGISTRY_OP_GAS.min(ctx.gas_budget));
    if ctx.gas_budget < REGISTRY_OP_GAS {
        return ExecOutcome::reverted(ctx.gas_budget);
    }
    let call = match RegistryCall::decode(&ctx.calldata) {
        Some(c) => c,
        None => return revert(),
    };
    let me = ctx.contract;
    let ok = |output: Vec<u8>, logs: Vec<LogEntry>| ExecOutcome {
        success: true,
        gas_used: REGISTRY_OP_GAS,
        output,
        logs,
    };

    match call {
        RegistryCall::Register => {
            let member_key = slot(&[b"member", ctx.caller.as_bytes()]);
            if !state.storage_get(&me, &member_key).is_zero() {
                return revert(); // double registration
            }
            let count_key = slot(&[b"participants.count"]);
            let index = get_u64(state, &me, &count_key);
            set_u64(state, me, count_key, index + 1);
            // member index is stored +1 so zero means "absent".
            set_u64(state, me, member_key, index + 1);
            set_addr(
                state,
                me,
                slot(&[b"participant", &index.to_le_bytes()]),
                ctx.caller,
            );
            let log = LogEntry {
                address: me,
                topic: topic_registered(),
                data: ctx.caller.as_bytes().to_vec(),
            };
            ok(index.to_le_bytes().to_vec(), vec![log])
        }
        RegistryCall::SubmitModel {
            round,
            model_hash,
            payload_bytes,
            sample_count,
        } => {
            let member_key = slot(&[b"member", ctx.caller.as_bytes()]);
            if state.storage_get(&me, &member_key).is_zero() {
                return revert(); // not registered
            }
            let dup_key = slot(&[b"submitted", &round.to_le_bytes(), ctx.caller.as_bytes()]);
            if !state.storage_get(&me, &dup_key).is_zero() {
                return revert(); // one submission per round per peer
            }
            let count_key = slot(&[b"round.count", &round.to_le_bytes()]);
            let index = get_u64(state, &me, &count_key);
            set_u64(state, me, count_key, index + 1);
            set_u64(state, me, dup_key, 1);
            let base = [
                b"sub".as_slice(),
                &round.to_le_bytes(),
                &index.to_le_bytes(),
            ]
            .concat();
            set_addr(state, me, slot(&[&base, b".sender"]), ctx.caller);
            state.storage_set(me, slot(&[&base, b".hash"]), model_hash);
            set_u64(state, me, slot(&[&base, b".payload"]), payload_bytes);
            set_u64(state, me, slot(&[&base, b".samples"]), sample_count);
            let mut data = ctx.caller.as_bytes().to_vec();
            data.extend_from_slice(&round.to_le_bytes());
            data.extend_from_slice(model_hash.as_bytes());
            let log = LogEntry {
                address: me,
                topic: topic_model_submitted(),
                data,
            };
            ok(index.to_le_bytes().to_vec(), vec![log])
        }
        RegistryCall::RoundCount { round } => {
            let count = get_u64(state, &me, &slot(&[b"round.count", &round.to_le_bytes()]));
            ok(count.to_le_bytes().to_vec(), vec![])
        }
        RegistryCall::GetSubmission { round, index } => {
            let count = get_u64(state, &me, &slot(&[b"round.count", &round.to_le_bytes()]));
            if index >= count {
                return revert();
            }
            let base = [
                b"sub".as_slice(),
                &round.to_le_bytes(),
                &index.to_le_bytes(),
            ]
            .concat();
            let sender = get_addr(state, &me, &slot(&[&base, b".sender"]));
            let hash = state.storage_get(&me, &slot(&[&base, b".hash"]));
            let payload = get_u64(state, &me, &slot(&[&base, b".payload"]));
            let samples = get_u64(state, &me, &slot(&[&base, b".samples"]));
            let mut out = sender.as_bytes().to_vec();
            out.extend_from_slice(hash.as_bytes());
            out.extend_from_slice(&payload.to_le_bytes());
            out.extend_from_slice(&samples.to_le_bytes());
            ok(out, vec![])
        }
        RegistryCall::RecordAggregate {
            round,
            combo_mask,
            agg_hash,
        } => {
            let member_key = slot(&[b"member", ctx.caller.as_bytes()]);
            if state.storage_get(&me, &member_key).is_zero() {
                return revert();
            }
            let base = [
                b"agg".as_slice(),
                &round.to_le_bytes(),
                ctx.caller.as_bytes(),
            ]
            .concat();
            state.storage_set(me, slot(&[&base, b".hash"]), agg_hash);
            set_mask(state, me, &base, &combo_mask);
            let mut data = ctx.caller.as_bytes().to_vec();
            data.extend_from_slice(&round.to_le_bytes());
            combo_mask.encode_into(&mut data);
            let log = LogEntry {
                address: me,
                topic: topic_aggregate_recorded(),
                data,
            };
            ok(Vec::new(), vec![log])
        }
        RegistryCall::ParticipantCount => {
            let count = get_u64(state, &me, &slot(&[b"participants.count"]));
            ok(count.to_le_bytes().to_vec(), vec![])
        }
        RegistryCall::GetAggregate { round, aggregator } => {
            let base = [
                b"agg".as_slice(),
                &round.to_le_bytes(),
                aggregator.as_bytes(),
            ]
            .concat();
            let hash = state.storage_get(&me, &slot(&[&base, b".hash"]));
            if hash.is_zero() {
                return revert();
            }
            let Some(mask) = get_mask(state, &me, &base) else {
                return revert(); // corrupt mask storage
            };
            let mut out = hash.as_bytes().to_vec();
            mask.encode_into(&mut out);
            ok(out, vec![])
        }
    }
}

/// Parses the output of a successful `GetSubmission` call.
pub fn parse_submission(output: &[u8]) -> Option<(H160, H256, u64, u64)> {
    if output.len() != 20 + 32 + 8 + 8 {
        return None;
    }
    let mut addr = [0u8; 20];
    addr.copy_from_slice(&output[..20]);
    let mut hash = [0u8; 32];
    hash.copy_from_slice(&output[20..52]);
    let payload = u64::from_le_bytes(output[52..60].try_into().ok()?);
    let samples = u64::from_le_bytes(output[60..68].try_into().ok()?);
    Some((
        H160::from_bytes(addr),
        H256::from_bytes(hash),
        payload,
        samples,
    ))
}

/// Parses a little-endian u64 returned by count-style methods.
pub fn parse_u64(output: &[u8]) -> Option<u64> {
    output.try_into().ok().map(u64::from_le_bytes)
}

/// Parses the output of a successful `GetAggregate` call:
/// `agg_hash 32B ‖ mask_len u8 ‖ mask bytes`.
pub fn parse_aggregate(output: &[u8]) -> Option<(H256, ComboMask)> {
    if output.len() < 32 + 1 {
        return None;
    }
    let mut hash = [0u8; 32];
    hash.copy_from_slice(&output[..32]);
    let (mask, used) = ComboMask::decode_from(&output[32..])?;
    if 32 + used != output.len() {
        return None;
    }
    Some((H256::from_bytes(hash), mask))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> H160 {
        let mut b = [0u8; 20];
        b[0] = n;
        H160::from_bytes(b)
    }

    fn registry() -> H160 {
        addr(0xEE)
    }

    fn call(state: &mut State, caller: H160, call: RegistryCall) -> ExecOutcome {
        let ctx = CallContext {
            caller,
            contract: registry(),
            calldata: call.encode(),
            gas_budget: 1_000_000,
            block_number: 1,
            timestamp_ns: 0,
        };
        execute_registry(&ctx, state)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let calls = vec![
            RegistryCall::Register,
            RegistryCall::SubmitModel {
                round: 3,
                model_hash: sha256(b"m"),
                payload_bytes: 253_952,
                sample_count: 1500,
            },
            RegistryCall::RoundCount { round: 9 },
            RegistryCall::GetSubmission { round: 2, index: 1 },
            RegistryCall::RecordAggregate {
                round: 1,
                combo_mask: ComboMask::from_u32(0b101),
                agg_hash: sha256(b"a"),
            },
            RegistryCall::RecordAggregate {
                round: 1,
                combo_mask: ComboMask::from_members([0, 33, 120]),
                agg_hash: sha256(b"wide"),
            },
            RegistryCall::ParticipantCount,
            RegistryCall::GetAggregate {
                round: 4,
                aggregator: addr(7),
            },
        ];
        for c in calls {
            assert_eq!(RegistryCall::decode(&c.encode()), Some(c));
        }
        assert_eq!(RegistryCall::decode(&[]), None);
        assert_eq!(RegistryCall::decode(&[99]), None);
        assert_eq!(RegistryCall::decode(&[1, 0, 0]), None);
    }

    #[test]
    fn registration_assigns_indices() {
        let mut state = State::new();
        let r1 = call(&mut state, addr(1), RegistryCall::Register);
        assert!(r1.success);
        assert_eq!(parse_u64(&r1.output), Some(0));
        let r2 = call(&mut state, addr(2), RegistryCall::Register);
        assert_eq!(parse_u64(&r2.output), Some(1));
        let count = call(&mut state, addr(9), RegistryCall::ParticipantCount);
        assert_eq!(parse_u64(&count.output), Some(2));
        assert_eq!(r1.logs.len(), 1);
        assert_eq!(r1.logs[0].topic, topic_registered());
    }

    #[test]
    fn double_registration_reverts() {
        let mut state = State::new();
        assert!(call(&mut state, addr(1), RegistryCall::Register).success);
        assert!(!call(&mut state, addr(1), RegistryCall::Register).success);
    }

    #[test]
    fn submission_requires_registration() {
        let mut state = State::new();
        let submit = RegistryCall::SubmitModel {
            round: 0,
            model_hash: sha256(b"m"),
            payload_bytes: 10,
            sample_count: 5,
        };
        assert!(!call(&mut state, addr(1), submit.clone()).success);
        call(&mut state, addr(1), RegistryCall::Register);
        assert!(call(&mut state, addr(1), submit).success);
    }

    #[test]
    fn one_submission_per_round_per_peer() {
        let mut state = State::new();
        call(&mut state, addr(1), RegistryCall::Register);
        let submit = |h: &[u8]| RegistryCall::SubmitModel {
            round: 1,
            model_hash: sha256(h),
            payload_bytes: 1,
            sample_count: 1,
        };
        assert!(call(&mut state, addr(1), submit(b"first")).success);
        assert!(!call(&mut state, addr(1), submit(b"second")).success);
        // A different round is fine.
        let other_round = RegistryCall::SubmitModel {
            round: 2,
            model_hash: sha256(b"x"),
            payload_bytes: 1,
            sample_count: 1,
        };
        assert!(call(&mut state, addr(1), other_round).success);
    }

    #[test]
    fn submissions_are_retrievable_in_order() {
        let mut state = State::new();
        for i in 1..=3u8 {
            call(&mut state, addr(i), RegistryCall::Register);
            let out = call(
                &mut state,
                addr(i),
                RegistryCall::SubmitModel {
                    round: 7,
                    model_hash: sha256(&[i]),
                    payload_bytes: u64::from(i) * 100,
                    sample_count: u64::from(i),
                },
            );
            assert!(out.success);
        }
        let count = call(&mut state, addr(9), RegistryCall::RoundCount { round: 7 });
        assert_eq!(parse_u64(&count.output), Some(3));
        for i in 0..3u64 {
            let out = call(
                &mut state,
                addr(9),
                RegistryCall::GetSubmission { round: 7, index: i },
            );
            assert!(out.success);
            let (sender, hash, payload, samples) = parse_submission(&out.output).unwrap();
            assert_eq!(sender, addr(i as u8 + 1));
            assert_eq!(hash, sha256(&[i as u8 + 1]));
            assert_eq!(payload, (i + 1) * 100);
            assert_eq!(samples, i + 1);
        }
        // Out of range reverts.
        assert!(
            !call(
                &mut state,
                addr(9),
                RegistryCall::GetSubmission { round: 7, index: 3 }
            )
            .success
        );
    }

    #[test]
    fn aggregates_recorded_and_fetched() {
        let mut state = State::new();
        call(&mut state, addr(1), RegistryCall::Register);
        let record = RegistryCall::RecordAggregate {
            round: 2,
            combo_mask: ComboMask::from_u32(0b011),
            agg_hash: sha256(b"agg"),
        };
        assert!(call(&mut state, addr(1), record).success);
        let got = call(
            &mut state,
            addr(9),
            RegistryCall::GetAggregate {
                round: 2,
                aggregator: addr(1),
            },
        );
        assert!(got.success);
        let (hash, mask) = parse_aggregate(&got.output).unwrap();
        assert_eq!(hash, sha256(b"agg"));
        assert_eq!(mask, ComboMask::from_u32(0b011));
        // Missing aggregate reverts.
        assert!(
            !call(
                &mut state,
                addr(9),
                RegistryCall::GetAggregate {
                    round: 3,
                    aggregator: addr(1)
                }
            )
            .success
        );
        // Unregistered recorder reverts.
        assert!(
            !call(
                &mut state,
                addr(5),
                RegistryCall::RecordAggregate {
                    round: 2,
                    combo_mask: ComboMask::from_u32(1),
                    agg_hash: sha256(b"x")
                }
            )
            .success
        );
    }

    #[test]
    fn wide_masks_round_trip_through_storage() {
        // Masks past the legacy 32-bit boundary survive the full
        // record → storage-packing → get path, including a multi-word one.
        let mut state = State::new();
        call(&mut state, addr(1), RegistryCall::Register);
        for (round, members) in [
            (1u32, vec![31usize]),                 // last legacy bit
            (2, vec![32]),                         // first wide bit
            (3, vec![0, 33, 47]),                  // the 48-peer regime
            (4, (0..128).collect::<Vec<usize>>()), // two storage words, full
            (5, vec![0, 255, 256, 1023]),          // past the old 256-bit cap
        ] {
            let mask = ComboMask::from_members(members.iter().copied());
            let record = RegistryCall::RecordAggregate {
                round,
                combo_mask: mask.clone(),
                agg_hash: sha256(&round.to_le_bytes()),
            };
            let out = call(&mut state, addr(1), record);
            assert!(out.success, "round {round} record failed");
            // The event carries the full length-prefixed mask.
            assert_eq!(out.logs.len(), 1);
            assert_eq!(out.logs[0].topic, topic_aggregate_recorded());
            assert_eq!(&out.logs[0].data[24..], mask.encode().as_slice());
            let got = call(
                &mut state,
                addr(9),
                RegistryCall::GetAggregate {
                    round,
                    aggregator: addr(1),
                },
            );
            assert!(got.success, "round {round} get failed");
            let (hash, back) = parse_aggregate(&got.output).unwrap();
            assert_eq!(hash, sha256(&round.to_le_bytes()));
            assert_eq!(back.members(), members, "round {round} mask mangled");
        }
    }

    #[test]
    fn rerecording_a_narrower_mask_clears_stale_wide_words() {
        // A wide mask then a narrow one under the same (round, aggregator)
        // key: the read must return exactly the narrow mask, not a hybrid.
        let mut state = State::new();
        call(&mut state, addr(1), RegistryCall::Register);
        for mask in [
            ComboMask::from_members(0..100),
            ComboMask::from_members([2, 5]),
        ] {
            assert!(
                call(
                    &mut state,
                    addr(1),
                    RegistryCall::RecordAggregate {
                        round: 7,
                        combo_mask: mask.clone(),
                        agg_hash: sha256(b"re"),
                    }
                )
                .success
            );
            let got = call(
                &mut state,
                addr(9),
                RegistryCall::GetAggregate {
                    round: 7,
                    aggregator: addr(1),
                },
            );
            let (_, back) = parse_aggregate(&got.output).unwrap();
            assert_eq!(back, mask);
        }
    }

    #[test]
    fn record_aggregate_rejects_malformed_masks() {
        let mut state = State::new();
        call(&mut state, addr(1), RegistryCall::Register);
        let good = RegistryCall::RecordAggregate {
            round: 1,
            combo_mask: ComboMask::from_members([0, 40]),
            agg_hash: sha256(b"ok"),
        }
        .encode();
        assert!(RegistryCall::decode(&good).is_some());
        // Oversize declared length: 129 mask bytes would address bits past
        // the cap, and the body really is present so only the length check
        // can reject it.
        let mut oversize = Vec::new();
        oversize.push(4u8);
        oversize.extend_from_slice(&1u32.to_le_bytes());
        oversize.push(129u8);
        oversize.extend_from_slice(&[1u8; 129]);
        oversize.extend_from_slice(sha256(b"big").as_bytes());
        assert_eq!(RegistryCall::decode(&oversize), None);
        // Declared length longer than the remaining calldata.
        let mut truncated = good.clone();
        truncated[5] = 30;
        assert_eq!(RegistryCall::decode(&truncated), None);
        // Non-canonical (zero-padded) mask body.
        let mut padded = Vec::new();
        padded.push(4u8);
        padded.extend_from_slice(&1u32.to_le_bytes());
        padded.extend_from_slice(&[2u8, 0b1, 0b0]); // len 2, trailing zero
        padded.extend_from_slice(sha256(b"pad").as_bytes());
        assert_eq!(RegistryCall::decode(&padded), None);
    }

    #[test]
    fn malformed_calldata_reverts() {
        let mut state = State::new();
        let ctx = CallContext {
            caller: addr(1),
            contract: registry(),
            calldata: vec![1, 2, 3],
            gas_budget: 1_000_000,
            block_number: 1,
            timestamp_ns: 0,
        };
        assert!(!execute_registry(&ctx, &mut state).success);
    }

    #[test]
    fn insufficient_gas_reverts_with_budget() {
        let mut state = State::new();
        let ctx = CallContext {
            caller: addr(1),
            contract: registry(),
            calldata: RegistryCall::Register.encode(),
            gas_budget: 10,
            block_number: 1,
            timestamp_ns: 0,
        };
        let out = execute_registry(&ctx, &mut state);
        assert!(!out.success);
        assert_eq!(out.gas_used, 10);
    }

    #[test]
    fn topics_are_distinct() {
        assert_ne!(topic_model_submitted(), topic_aggregate_recorded());
        assert_ne!(topic_model_submitted(), topic_registered());
    }
}
