//! Variable-width combination masks: which participants entered an aggregate.
//!
//! The registry originally stored the aggregated combination as a `u32`
//! bitmask, hard-capping the whole stack at 32 peers. [`ComboMask`] lifts the
//! ceiling to [`MAX_MASK_BITS`] participants: a little-endian byte-packed
//! bitset (bit `i` of byte `i / 8` is participant `i`), length-prefixed on
//! the wire and packed across 64-bit words in contract storage.
//!
//! The representation is **canonical**: trailing zero bytes are never stored,
//! so two masks over the same member set are always byte-for-byte (and
//! therefore `Eq`/`Hash`) identical, and the ABI encoding of a mask is
//! unique. Masks whose members all sit below bit 32 round-trip losslessly
//! through `u32` ([`ComboMask::to_u32`] / [`ComboMask::from_u32`]), the
//! compatibility boundary with the legacy fixed-width encoding.

/// Maximum number of participants a mask can address.
pub const MAX_MASK_BITS: usize = 1024;

/// Maximum canonical byte length of a mask (`MAX_MASK_BITS / 8`).
pub const MAX_MASK_BYTES: usize = MAX_MASK_BITS / 8;

/// Number of 64-bit storage words a maximal mask packs into.
pub const MASK_STORAGE_WORDS: usize = MAX_MASK_BYTES / 8;

/// A set of participant indices, byte-packed little-endian.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ComboMask {
    /// Canonical bytes: bit `i % 8` of `bytes[i / 8]` is participant `i`;
    /// the last byte is never zero.
    bytes: Vec<u8>,
}

impl ComboMask {
    /// The empty mask.
    pub fn empty() -> Self {
        ComboMask::default()
    }

    /// Builds a mask over the given participant indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= MAX_MASK_BITS`.
    pub fn from_members<I: IntoIterator<Item = usize>>(members: I) -> Self {
        let mut mask = ComboMask::empty();
        for m in members {
            mask.set(m);
        }
        mask
    }

    /// Sets participant `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= MAX_MASK_BITS`.
    pub fn set(&mut self, bit: usize) {
        assert!(
            bit < MAX_MASK_BITS,
            "combination masks address at most {MAX_MASK_BITS} participants (got bit {bit})"
        );
        let byte = bit / 8;
        if self.bytes.len() <= byte {
            self.bytes.resize(byte + 1, 0);
        }
        self.bytes[byte] |= 1 << (bit % 8);
    }

    /// Whether participant `bit` is in the mask.
    pub fn contains(&self, bit: usize) -> bool {
        self.bytes
            .get(bit / 8)
            .is_some_and(|b| b & (1 << (bit % 8)) != 0)
    }

    /// The member indices, ascending.
    pub fn members(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (i, &b) in self.bytes.iter().enumerate() {
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    out.push(i * 8 + bit);
                }
            }
        }
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bytes.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether no participant is set.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Index of the highest set bit, or `None` for the empty mask.
    pub fn max_bit(&self) -> Option<usize> {
        let last = *self.bytes.last()?;
        debug_assert!(last != 0, "canonical masks have no trailing zero byte");
        Some((self.bytes.len() - 1) * 8 + (7 - last.leading_zeros() as usize))
    }

    /// Canonical byte length (`0..=MAX_MASK_BYTES`).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The canonical little-endian bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Builds a mask from little-endian bytes, trimming trailing zeros.
    /// Returns `None` if more than `MAX_MASK_BYTES` bytes remain after
    /// trimming (a mask addressing participants beyond the cap).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let trimmed = match bytes.iter().rposition(|&b| b != 0) {
            Some(last) => &bytes[..=last],
            None => &[],
        };
        if trimmed.len() > MAX_MASK_BYTES {
            return None;
        }
        Some(ComboMask {
            bytes: trimmed.to_vec(),
        })
    }

    /// The legacy `u32` view of the mask.
    pub fn from_u32(mask: u32) -> Self {
        ComboMask::from_bytes(&mask.to_le_bytes()).expect("4 bytes fit")
    }

    /// The mask as a `u32`, if every member sits below bit 32 (the legacy
    /// fixed-width boundary). `None` once any member index is ≥ 32.
    pub fn to_u32(&self) -> Option<u32> {
        if self.bytes.len() > 4 {
            return None;
        }
        let mut le = [0u8; 4];
        le[..self.bytes.len()].copy_from_slice(&self.bytes);
        Some(u32::from_le_bytes(le))
    }

    /// Appends the wire form — `[len: u8][bytes…]` — to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert!(self.bytes.len() <= MAX_MASK_BYTES);
        out.push(self.bytes.len() as u8);
        out.extend_from_slice(&self.bytes);
    }

    /// The wire form as a standalone vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.bytes.len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes a length-prefixed mask from the front of `data`, returning the
    /// mask and the number of bytes consumed. `None` on a truncated buffer,
    /// an oversize length, or a non-canonical (trailing-zero-padded) body.
    pub fn decode_from(data: &[u8]) -> Option<(Self, usize)> {
        let (&len, rest) = data.split_first()?;
        let len = len as usize;
        if len > MAX_MASK_BYTES || rest.len() < len {
            return None;
        }
        let body = &rest[..len];
        if body.last() == Some(&0) {
            return None; // non-canonical encoding
        }
        let mask = ComboMask::from_bytes(body)?;
        Some((mask, 1 + len))
    }

    /// Packs the mask into [`MASK_STORAGE_WORDS`] little-endian 64-bit words
    /// (zero-padded) — the contract-storage form.
    pub fn to_words(&self) -> [u64; MASK_STORAGE_WORDS] {
        let mut words = [0u64; MASK_STORAGE_WORDS];
        for (i, &b) in self.bytes.iter().enumerate() {
            words[i / 8] |= u64::from(b) << ((i % 8) * 8);
        }
        words
    }

    /// Rebuilds a mask from its storage words and canonical byte length.
    /// Returns `None` if `byte_len` exceeds [`MAX_MASK_BYTES`] or the words
    /// carry set bits beyond `byte_len` (corrupt storage).
    pub fn from_words(words: &[u64; MASK_STORAGE_WORDS], byte_len: usize) -> Option<Self> {
        if byte_len > MAX_MASK_BYTES {
            return None;
        }
        let mut bytes = Vec::with_capacity(byte_len);
        for i in 0..MAX_MASK_BYTES {
            let b = (words[i / 8] >> ((i % 8) * 8)) as u8;
            if i < byte_len {
                bytes.push(b);
            } else if b != 0 {
                return None; // bits beyond the recorded length
            }
        }
        if byte_len > 0 && bytes[byte_len - 1] == 0 {
            return None; // stored length was not canonical
        }
        Some(ComboMask { bytes })
    }
}

impl std::fmt::Display for ComboMask {
    /// Lowercase hex of the canonical little-endian bytes (`0x` for empty).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x")?;
        for b in &self.bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_is_zero_bytes() {
        let m = ComboMask::empty();
        assert!(m.is_empty());
        assert_eq!(m.byte_len(), 0);
        assert_eq!(m.count_ones(), 0);
        assert_eq!(m.max_bit(), None);
        assert_eq!(m.members(), Vec::<usize>::new());
        assert_eq!(m.encode(), vec![0u8]);
        assert_eq!(m.to_u32(), Some(0));
        assert_eq!(m.to_string(), "0x");
    }

    #[test]
    fn set_contains_members_round_trip() {
        let m = ComboMask::from_members([0, 7, 8, 31, 32, 33, 127]);
        assert_eq!(m.members(), vec![0, 7, 8, 31, 32, 33, 127]);
        assert_eq!(m.count_ones(), 7);
        assert_eq!(m.max_bit(), Some(127));
        assert_eq!(m.byte_len(), 16);
        assert!(m.contains(31));
        assert!(m.contains(127));
        assert!(!m.contains(1));
        assert!(!m.contains(255));
    }

    #[test]
    fn representation_is_canonical() {
        // Same member set built in different orders is byte-identical.
        let a = ComboMask::from_members([40, 3]);
        let b = ComboMask::from_members([3, 40]);
        assert_eq!(a, b);
        // Trailing zero bytes are trimmed on ingestion.
        let c = ComboMask::from_bytes(&[0b1000, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(c.byte_len(), 1);
        assert_eq!(c, ComboMask::from_members([3]));
    }

    #[test]
    fn u32_boundary_at_bit_32() {
        // Bit 31 is the last index the legacy u32 view can express.
        let legacy = ComboMask::from_members([0, 5, 31]);
        assert_eq!(legacy.to_u32(), Some((1 << 0) | (1 << 5) | (1 << 31)));
        assert_eq!(ComboMask::from_u32(legacy.to_u32().unwrap()), legacy);
        // Bit 32 crosses the boundary: no u32 view exists.
        let wide = ComboMask::from_members([0, 32]);
        assert_eq!(wide.to_u32(), None);
        assert_eq!(wide.byte_len(), 5);
        // Every u32 round-trips.
        for mask in [0u32, 1, 0b101, u32::MAX, 1 << 31] {
            assert_eq!(ComboMask::from_u32(mask).to_u32(), Some(mask));
        }
    }

    #[test]
    fn wire_encoding_round_trips_and_rejects_junk() {
        for members in [
            vec![],
            vec![0],
            vec![31],
            vec![32],
            vec![0, 64, 255],
            vec![0, 256, 512, 1023],
        ] {
            let m = ComboMask::from_members(members);
            let wire = m.encode();
            let (back, used) = ComboMask::decode_from(&wire).unwrap();
            assert_eq!(back, m);
            assert_eq!(used, wire.len());
            // Trailing payload is left for the caller.
            let mut longer = wire.clone();
            longer.extend_from_slice(&[0xAA, 0xBB]);
            let (back2, used2) = ComboMask::decode_from(&longer).unwrap();
            assert_eq!(back2, m);
            assert_eq!(used2, wire.len());
        }
        // Truncated body.
        assert!(ComboMask::decode_from(&[3, 1, 2]).is_none());
        // Oversize length (129 bytes would address bits beyond the cap).
        assert!(ComboMask::decode_from(&[129]).is_none());
        // Non-canonical (zero-padded) body.
        assert!(ComboMask::decode_from(&[2, 1, 0]).is_none());
        // Empty buffer.
        assert!(ComboMask::decode_from(&[]).is_none());
    }

    #[test]
    fn storage_words_pack_and_unpack() {
        let m = ComboMask::from_members([0, 9, 63, 64, 130, 255, 256, 700, 1023]);
        let words = m.to_words();
        assert_eq!(words[0], (1 << 0) | (1 << 9) | (1 << 63));
        assert_eq!(words[1], 1 << 0);
        assert_eq!(words[2], 1 << 2);
        assert_eq!(words[3], 1 << 63);
        assert_eq!(words[4], 1 << 0);
        assert_eq!(words[10], 1 << (700 - 640));
        assert_eq!(words[15], 1 << 63);
        assert_eq!(ComboMask::from_words(&words, m.byte_len()), Some(m));
    }

    #[test]
    fn storage_unpack_rejects_corrupt_length() {
        let m = ComboMask::from_members([40]);
        let words = m.to_words();
        // Length shorter than the highest set bit: bits beyond len → corrupt.
        assert_eq!(ComboMask::from_words(&words, 2), None);
        // Length longer than canonical: trailing zero byte → corrupt.
        assert_eq!(ComboMask::from_words(&words, 7), None);
        // Oversize length.
        assert_eq!(ComboMask::from_words(&[0; MASK_STORAGE_WORDS], 129), None);
        // Empty mask stores as length zero.
        assert_eq!(
            ComboMask::from_words(&[0; MASK_STORAGE_WORDS], 0),
            Some(ComboMask::empty())
        );
    }

    #[test]
    fn from_bytes_rejects_oversize() {
        assert!(ComboMask::from_bytes(&[1u8; 129]).is_none());
        // 129 bytes of zeros trims to empty: fine.
        assert!(ComboMask::from_bytes(&[0u8; 129]).is_some());
        assert!(ComboMask::from_bytes(&[0xFF; 128]).is_some());
    }

    #[test]
    #[should_panic(expected = "at most 1024 participants")]
    fn set_beyond_cap_panics() {
        let mut m = ComboMask::empty();
        m.set(1024);
    }

    #[test]
    fn display_is_le_hex() {
        let m = ComboMask::from_members([0, 1, 8]);
        assert_eq!(m.to_string(), "0x0301");
    }
}
