//! Smart-contract execution for `blockfed`: the MiniVM bytecode interpreter
//! and the native federated-learning registry contract.
//!
//! The paper implements its asynchronous aggregation as a Solidity contract on
//! private Ethereum. Here the same observable behaviour is provided twice:
//!
//! * [`interp`] — MiniVM, a small EVM-flavoured stack machine with storage,
//!   gas metering, jumps and revert semantics (plus [`asm`], an assembler for
//!   writing contracts readably), and
//! * [`registry`] — the FL registry as a native contract (register, submit
//!   model fingerprints per round, record chosen aggregates) exposed through
//!   the same `ContractRuntime` interface and cross-checked against MiniVM
//!   programs in tests.
//!
//! [`BlockfedRuntime`] is the dispatcher the chain executes blocks with.
//!
//! # Examples
//!
//! ```
//! use blockfed_vm::{asm::assemble, BlockfedRuntime};
//! use blockfed_chain::{CallContext, ContractRuntime, State};
//! use blockfed_crypto::H160;
//!
//! let mut rt = BlockfedRuntime::new();
//! let mut state = State::new();
//! let code = assemble("PUSH8 2\nPUSH8 40\nADD\nPUSH8 1\nRETURN")?;
//! let ctx = CallContext {
//!     caller: H160::zero(),
//!     contract: H160::zero(),
//!     calldata: vec![],
//!     gas_budget: 10_000,
//!     block_number: 0,
//!     timestamp_ns: 0,
//! };
//! let out = rt.execute(&ctx, &code, &mut state);
//! assert!(out.success);
//! assert_eq!(out.output[31], 42);
//! # Ok::<(), blockfed_vm::asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod interp;
pub mod mask;
pub mod opcode;
pub mod registry;
pub mod runtime;

pub use mask::{ComboMask, MASK_STORAGE_WORDS, MAX_MASK_BITS, MAX_MASK_BYTES};
pub use opcode::Opcode;
pub use registry::{parse_aggregate, parse_submission, parse_u64, RegistryCall};
pub use runtime::{BlockfedRuntime, NativeContract, NATIVE_REGISTRY_CODE};
