//! Property tests for the variable-width combination mask: random member
//! sets over populations of 1..=128 peers must survive the full
//! `encode → ABI decode → member set` pipeline — and the executed contract's
//! storage packing — bit-exactly, including the u32-compatibility boundary
//! at N = 32/33.

use blockfed_chain::{CallContext, State};
use blockfed_crypto::sha256::sha256;
use blockfed_crypto::H160;
use blockfed_vm::registry::{execute_registry, topic_aggregate_recorded};
use blockfed_vm::{parse_aggregate, ComboMask, RegistryCall};
use proptest::prelude::*;

/// Deterministically derives a member subset of `0..n` from a seed byte
/// vector (the vendored proptest has no dependent-strategy support).
fn subset(n: usize, picks: &[u8]) -> Vec<usize> {
    let mut members: Vec<usize> = picks.iter().map(|&p| p as usize % n).collect();
    members.sort_unstable();
    members.dedup();
    members
}

fn registry_addr() -> H160 {
    let mut b = [0u8; 20];
    b[0] = 0xEE;
    H160::from_bytes(b)
}

fn exec(state: &mut State, caller: H160, call: RegistryCall) -> blockfed_chain::ExecOutcome {
    let ctx = CallContext {
        caller,
        contract: registry_addr(),
        calldata: call.encode(),
        gas_budget: 1_000_000,
        block_number: 1,
        timestamp_ns: 0,
    };
    execute_registry(&ctx, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → members is the identity for any subset of 0..n,
    /// n ∈ 1..=128.
    #[test]
    fn mask_wire_roundtrip(
        n in 1usize..=128,
        picks in prop::collection::vec(any::<u8>(), 1..24usize),
    ) {
        let members = subset(n, &picks);
        let mask = ComboMask::from_members(members.iter().copied());
        prop_assert_eq!(mask.members(), members.clone());
        let (decoded, used) = ComboMask::decode_from(&mask.encode()).expect("decodes");
        prop_assert_eq!(used, 1 + mask.byte_len());
        prop_assert_eq!(decoded.members(), members);
    }

    /// The same round-trip through the full registry ABI: a RecordAggregate
    /// call encodes to calldata, decodes back, and the executed contract's
    /// GetAggregate returns the identical member set out of packed storage.
    #[test]
    fn mask_abi_and_storage_roundtrip(
        n in 1usize..=128,
        picks in prop::collection::vec(any::<u8>(), 1..24usize),
        round in 0u32..1000,
    ) {
        let members = subset(n, &picks);
        let mask = ComboMask::from_members(members.iter().copied());
        let call = RegistryCall::RecordAggregate {
            round,
            combo_mask: mask.clone(),
            agg_hash: sha256(&picks),
        };
        // Calldata round-trip.
        let decoded = RegistryCall::decode(&call.encode()).expect("valid calldata");
        prop_assert_eq!(&decoded, &call);

        // Executed round-trip through storage.
        let mut state = State::new();
        let caller = registry_addr(); // any address may register
        prop_assert!(exec(&mut state, caller, RegistryCall::Register).success);
        let out = exec(&mut state, caller, call);
        prop_assert!(out.success);
        prop_assert_eq!(out.logs[0].topic, topic_aggregate_recorded());
        let got = exec(
            &mut state,
            caller,
            RegistryCall::GetAggregate { round, aggregator: caller },
        );
        prop_assert!(got.success);
        let (hash, back) = parse_aggregate(&got.output).expect("parses");
        prop_assert_eq!(hash, sha256(&picks));
        prop_assert_eq!(back.members(), members);
    }

    /// The u32-compatibility boundary: any mask confined to bits 0..32 has a
    /// faithful u32 view, and any mask touching bit ≥ 32 has none.
    #[test]
    fn u32_boundary(picks in prop::collection::vec(any::<u8>(), 1..16usize)) {
        let narrow = ComboMask::from_members(subset(32, &picks));
        let as_u32 = narrow.to_u32().expect("fits in u32");
        prop_assert_eq!(ComboMask::from_u32(as_u32), narrow);

        // Push one member across the boundary: bit 32 exactly (N = 33).
        let mut wide_members = subset(32, &picks);
        wide_members.push(32);
        let wide = ComboMask::from_members(wide_members.iter().copied());
        prop_assert_eq!(wide.to_u32(), None);
        prop_assert_eq!(wide.members(), wide_members);
        let (back, _) = ComboMask::decode_from(&wide.encode()).expect("decodes");
        prop_assert_eq!(back, wide);
    }
}
