//! Network topologies.

use serde::{Deserialize, Serialize};

/// Identifies a network node (same index space as the FL client ids).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Who is adjacent to whom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of nodes is connected (the paper's 3-peer network).
    FullMesh,
    /// Node `i` connects to `i±1 mod n`.
    Ring,
    /// All nodes connect through one hub.
    Star {
        /// The hub node.
        hub: NodeId,
    },
    /// Explicit undirected edge list.
    Custom(Vec<(NodeId, NodeId)>),
}

impl Topology {
    /// The neighbors of `node` in an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId, n: usize) -> Vec<NodeId> {
        assert!(node.0 < n, "node {node} out of range for {n} nodes");
        match self {
            Topology::FullMesh => (0..n).filter(|&i| i != node.0).map(NodeId).collect(),
            Topology::Ring => {
                if n <= 1 {
                    return Vec::new();
                }
                if n == 2 {
                    return vec![NodeId(1 - node.0)];
                }
                let prev = NodeId((node.0 + n - 1) % n);
                let next = NodeId((node.0 + 1) % n);
                vec![prev, next]
            }
            Topology::Star { hub } => {
                if node == *hub {
                    (0..n).filter(|&i| i != hub.0).map(NodeId).collect()
                } else {
                    vec![*hub]
                }
            }
            Topology::Custom(edges) => {
                let mut out: Vec<NodeId> = edges
                    .iter()
                    .filter_map(|&(a, b)| {
                        if a == node {
                            Some(b)
                        } else if b == node {
                            Some(a)
                        } else {
                            None
                        }
                    })
                    .collect();
                out.sort();
                out.dedup();
                out
            }
        }
    }

    /// Whether two distinct nodes are adjacent. Allocation-free: this sits
    /// on the per-edge hot path of every flood.
    pub fn adjacent(&self, a: NodeId, b: NodeId, n: usize) -> bool {
        assert!(a.0 < n, "node {a} out of range for {n} nodes");
        if a == b || b.0 >= n {
            return false;
        }
        match self {
            Topology::FullMesh => true,
            Topology::Ring => {
                if n == 2 {
                    true
                } else {
                    let diff = a.0.abs_diff(b.0);
                    diff == 1 || diff == n - 1
                }
            }
            Topology::Star { hub } => a == *hub || b == *hub,
            Topology::Custom(edges) => edges
                .iter()
                .any(|&(x, y)| (x == a && y == b) || (x == b && y == a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_connects_everyone() {
        let t = Topology::FullMesh;
        assert_eq!(t.neighbors(NodeId(0), 3), vec![NodeId(1), NodeId(2)]);
        assert!(t.adjacent(NodeId(0), NodeId(2), 3));
        assert!(!t.adjacent(NodeId(1), NodeId(1), 3));
    }

    #[test]
    fn ring_has_two_neighbors() {
        let t = Topology::Ring;
        assert_eq!(t.neighbors(NodeId(0), 5), vec![NodeId(4), NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(2), 5), vec![NodeId(1), NodeId(3)]);
        assert!(!t.adjacent(NodeId(0), NodeId(2), 5));
        // Degenerate sizes.
        assert_eq!(t.neighbors(NodeId(0), 1), Vec::<NodeId>::new());
        assert_eq!(t.neighbors(NodeId(0), 2), vec![NodeId(1)]);
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::Star { hub: NodeId(0) };
        assert_eq!(
            t.neighbors(NodeId(0), 4),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(t.neighbors(NodeId(2), 4), vec![NodeId(0)]);
        assert!(!t.adjacent(NodeId(1), NodeId(2), 4));
    }

    #[test]
    fn custom_edges_are_undirected_and_deduped() {
        let t = Topology::Custom(vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(0)),
            (NodeId(1), NodeId(2)),
        ]);
        assert_eq!(t.neighbors(NodeId(1), 3), vec![NodeId(0), NodeId(2)]);
        assert_eq!(t.neighbors(NodeId(2), 3), vec![NodeId(1)]);
        assert!(t.adjacent(NodeId(0), NodeId(1), 3));
        assert!(!t.adjacent(NodeId(0), NodeId(2), 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let _ = Topology::FullMesh.neighbors(NodeId(5), 3);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(3).to_string(), "N3");
    }
}
