//! The simulated peer-to-peer network: topology + links + partitions.

use std::collections::{HashMap, HashSet};

use blockfed_sim::SimDuration;
use rand::Rng;

use crate::link::LinkSpec;
use crate::topology::{NodeId, Topology};

/// One delivery computed by [`Network::flood_routes`]: the receiving node,
/// its arrival offset, and the relay path (the sequence of undirected edges
/// the message crosses, origin-first).
///
/// The path is what makes *in-flight* partition semantics possible: a caller
/// schedules the delivery for `origin_time + delay` and, when that moment
/// arrives, asks [`Network::path_open`] whether every crossed edge still
/// exists. A partition injected while the message is in flight closes an edge
/// on the path and the delivery is dropped — not just future floods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodDelivery {
    /// The node reached.
    pub node: NodeId,
    /// Arrival offset from the flood's origin time.
    pub delay: SimDuration,
    /// Undirected edges crossed, in relay order from the origin.
    pub path: Vec<(NodeId, NodeId)>,
}

/// What one flood accomplished: how many deliveries were made, and how many
/// were lost because their committed relay path crossed an edge that dropped
/// the message ([`LinkSpec::sample_drop`]). On lossless links `dropped` is
/// always zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FloodStats {
    /// Deliveries handed to the visitor.
    pub delivered: usize,
    /// Deliveries lost to per-edge packet loss this flood.
    pub dropped: usize,
}

/// A simulated network over `n` nodes.
///
/// # Examples
///
/// ```
/// use blockfed_net::{LinkSpec, Network, NodeId, Topology};
/// use rand::SeedableRng;
///
/// let net = Network::new(3, Topology::FullMesh, LinkSpec::lan());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = net.delay(NodeId(0), NodeId(1), 1_000, &mut rng);
/// assert!(d.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    n: usize,
    topology: Topology,
    default_link: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
    cut: HashSet<(NodeId, NodeId)>,
}

fn unordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Reusable routing scratch for [`Network::flood_with`]: the Dijkstra state,
/// pre-sampled edge delays, the avoid mask, a cached adjacency list, and the
/// per-delivery path buffer — everything a flood allocates, hoisted out of
/// the per-call hot path so an orchestrator flooding thousands of times
/// reuses one set of buffers.
///
/// A scratch may be shared across networks; its caches re-key themselves when
/// the topology or node count changes.
#[derive(Debug, Default)]
pub struct FloodScratch {
    /// `avoid[i] == true` excludes node `i` from receiving and relaying.
    /// Empty means "avoid nobody".
    avoid: Vec<bool>,
    dist: Vec<SimDuration>,
    prev: Vec<usize>,
    visited: Vec<bool>,
    /// Sampled delay of undirected edge `(lo, hi)` at slot `lo * n + hi`,
    /// valid only while its stamp matches the current flood's epoch.
    edge_delay: Vec<(u64, Option<SimDuration>)>,
    /// Epoch stamp marking an edge that dropped this flood's message
    /// (per-edge loss). A stale stamp — any older epoch — means "not
    /// dropped", so the buffer never needs clearing between floods.
    edge_drop: Vec<u64>,
    epoch: u64,
    /// CSR adjacency (offsets + flattened neighbor lists) cached per
    /// `(topology, n)`.
    adj_off: Vec<usize>,
    adj: Vec<usize>,
    adj_key: Option<(Topology, usize)>,
    path_buf: Vec<(NodeId, NodeId)>,
}

impl FloodScratch {
    /// Creates an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the avoid mask: `flags` yields one `bool` per node id, `true`
    /// excluding that node from receiving and relaying. Clearing to an empty
    /// iterator avoids nobody. The mask persists across floods until reset.
    pub fn set_avoid<I: IntoIterator<Item = bool>>(&mut self, flags: I) {
        self.avoid.clear();
        self.avoid.extend(flags);
    }

    /// Re-keys the adjacency cache and resets per-flood state.
    fn prepare(&mut self, topology: &Topology, n: usize) {
        let cached = matches!(&self.adj_key, Some((t, m)) if *m == n && t == topology);
        if !cached {
            self.adj.clear();
            self.adj_off.clear();
            self.adj_off.push(0);
            for a in 0..n {
                self.adj
                    .extend(topology.neighbors(NodeId(a), n).into_iter().map(|b| b.0));
                self.adj_off.push(self.adj.len());
            }
            self.adj_key = Some((topology.clone(), n));
            self.edge_delay.clear();
            self.edge_delay.resize(n * n, (0, None));
            self.edge_drop.clear();
            self.edge_drop.resize(n * n, 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.dist.clear();
        self.dist.resize(n, SimDuration::MAX);
        self.visited.clear();
        self.visited.resize(n, false);
        self.prev.clear();
        self.prev.resize(n, usize::MAX);
    }

    fn avoided(&self, node: usize) -> bool {
        self.avoid.get(node).copied().unwrap_or(false)
    }
}

impl Network {
    /// Creates a network with one link profile everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, topology: Topology, default_link: LinkSpec) -> Self {
        assert!(n > 0, "network needs at least one node");
        Network {
            n,
            topology,
            default_link,
            overrides: HashMap::new(),
            cut: HashSet::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no nodes (never true; constructor enforces ≥1).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// The configured topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Overrides the link profile between two nodes (both directions).
    pub fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.overrides.insert(unordered(a, b), spec);
    }

    /// The effective link profile between two nodes.
    pub fn link(&self, a: NodeId, b: NodeId) -> LinkSpec {
        self.overrides
            .get(&unordered(a, b))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Severs the link between two nodes (fault injection).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.cut.insert(unordered(a, b));
    }

    /// Splits the network into two halves, cutting every cross link.
    pub fn partition_halves(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                self.partition(a, b);
            }
        }
    }

    /// Restores the link between two nodes.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.cut.remove(&unordered(a, b));
    }

    /// Restores every severed link.
    pub fn heal_all(&mut self) {
        self.cut.clear();
    }

    /// Whether two nodes can currently exchange messages directly.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.topology.adjacent(a, b, self.n) && !self.cut.contains(&unordered(a, b))
    }

    /// Samples the delay of a direct message, or `None` if not adjacent,
    /// partitioned, or lost.
    pub fn delay<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        rng: &mut R,
    ) -> Option<SimDuration> {
        if !self.connected(from, to) {
            return None;
        }
        self.link(from, to).delay(bytes, rng)
    }

    /// Computes flood (gossip) arrival offsets from `origin` to every reachable
    /// node: a shortest-path relay where each hop's delay is sampled once.
    /// Nodes cut off by partitions, or whose delivery was lost to per-edge
    /// packet loss, are absent from the result.
    pub fn flood<R: Rng + ?Sized>(
        &self,
        origin: NodeId,
        bytes: u64,
        rng: &mut R,
    ) -> HashMap<NodeId, SimDuration> {
        self.flood_routes(origin, bytes, rng)
            .into_iter()
            .map(|d| (d.node, d.delay))
            .collect()
    }

    /// Like [`Network::flood`] but also returns each delivery's relay path, so
    /// callers holding deliveries in flight can re-check [`Network::path_open`]
    /// at arrival time and drop messages whose route a later partition cut.
    ///
    /// Consumes the RNG identically to [`Network::flood`] (which is
    /// implemented on top of it), so switching between the two never perturbs
    /// a deterministic simulation. Deliveries are returned sorted by node id.
    pub fn flood_routes<R: Rng + ?Sized>(
        &self,
        origin: NodeId,
        bytes: u64,
        rng: &mut R,
    ) -> Vec<FloodDelivery> {
        self.flood_routes_avoiding(origin, bytes, rng, &HashSet::new())
    }

    /// [`Network::flood_routes`] over the subgraph that excludes `avoid`
    /// nodes: excluded nodes neither receive nor *relay* — the gossip routing
    /// a caller needs once peers can crash-stop mid-run (a dead peer must not
    /// forward traffic on a ring or star).
    ///
    /// Edge delays are pre-sampled over the full topology regardless of
    /// `avoid`, so RNG consumption is identical to [`Network::flood_routes`]
    /// and switching between the two never perturbs a deterministic
    /// simulation.
    pub fn flood_routes_avoiding<R: Rng + ?Sized>(
        &self,
        origin: NodeId,
        bytes: u64,
        rng: &mut R,
        avoid: &HashSet<NodeId>,
    ) -> Vec<FloodDelivery> {
        let mut scratch = FloodScratch::new();
        scratch.set_avoid((0..self.n).map(|i| avoid.contains(&NodeId(i))));
        let mut out = Vec::new();
        let _ = self.flood_with(origin, bytes, rng, &mut scratch, |node, delay, path| {
            out.push(FloodDelivery {
                node,
                delay,
                path: path.to_vec(),
            });
        });
        out
    }

    /// The allocation-free core of every flood API: shortest-path gossip
    /// routing (Dijkstra over delays sampled once per edge) whose working
    /// state lives in a caller-owned [`FloodScratch`]. `visit` is called once
    /// per delivery in ascending node order with the receiver, its arrival
    /// offset, and a *borrowed* relay path — clone the path only if you need
    /// to keep it. Returns a [`FloodStats`] counting deliveries made and
    /// deliveries lost to per-edge packet loss.
    ///
    /// Nodes flagged in the scratch's avoid mask (see
    /// [`FloodScratch::set_avoid`]) neither receive nor relay. Edge delays
    /// are pre-sampled over the full topology in a fixed order regardless of
    /// the mask, so RNG consumption — and with it the rest of a
    /// deterministic simulation — is identical across every flood API and
    /// every avoid set.
    ///
    /// # Loss semantics
    ///
    /// Each non-cut edge samples one drop decision per flood, from the same
    /// RNG stream as its delay and only when its link is lossy (so
    /// `loss_rate: 0.0` consumes randomness exactly as a loss-free build).
    /// The relay tree is committed by delay over *all* non-cut edges: gossip
    /// suppresses redundant relays, so a message lost on a committed tree
    /// edge takes the whole subtree behind it with it rather than silently
    /// rerouting. Those deliveries are skipped (not visited) and counted in
    /// the returned stats — recovery is the caller's job (retry, fetch).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of range.
    pub fn flood_with<R: Rng + ?Sized>(
        &self,
        origin: NodeId,
        bytes: u64,
        rng: &mut R,
        scratch: &mut FloodScratch,
        mut visit: impl FnMut(NodeId, SimDuration, &[(NodeId, NodeId)]),
    ) -> FloodStats {
        assert!(origin.0 < self.n, "origin out of range");
        let n = self.n;
        scratch.prepare(&self.topology, n);
        // Pre-sample each usable edge once (symmetric delay per message
        // relay), in the same first-encounter order as the allocating APIs
        // always have, so switching APIs never perturbs a simulation.
        for a in 0..n {
            for idx in scratch.adj_off[a]..scratch.adj_off[a + 1] {
                let b = scratch.adj[idx];
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let slot = lo * n + hi;
                if scratch.edge_delay[slot].0 != scratch.epoch {
                    // Adjacency holds by construction (the pair comes from
                    // the adjacency list), so only the partition check gates
                    // the sample — re-proving the topology edge per draw is
                    // the kind of per-edge cost this path exists to shed.
                    let d = if self.cut.contains(&(NodeId(lo), NodeId(hi))) {
                        None
                    } else {
                        let link = self.link(NodeId(lo), NodeId(hi));
                        if link.sample_drop(rng) {
                            scratch.edge_drop[slot] = scratch.epoch;
                        }
                        Some(link.transmit_delay(bytes, rng))
                    };
                    scratch.edge_delay[slot] = (scratch.epoch, d);
                }
            }
        }
        // Dijkstra with deterministic (distance, node id) selection.
        scratch.dist[origin.0] = SimDuration::ZERO;
        loop {
            let mut node = n;
            let mut base = SimDuration::MAX;
            for v in 0..n {
                if !scratch.visited[v] && scratch.dist[v] < base {
                    node = v;
                    base = scratch.dist[v];
                }
            }
            if node == n {
                break;
            }
            scratch.visited[node] = true;
            if node != origin.0 && scratch.avoided(node) {
                continue; // reachable but excluded: receives nothing, relays nothing
            }
            for idx in scratch.adj_off[node]..scratch.adj_off[node + 1] {
                let nb = scratch.adj[idx];
                if scratch.visited[nb] || scratch.avoided(nb) {
                    continue;
                }
                let (lo, hi) = if node <= nb { (node, nb) } else { (nb, node) };
                let (stamp, delay) = scratch.edge_delay[lo * n + hi];
                if let (true, Some(d)) = (stamp == scratch.epoch, delay) {
                    let candidate = base + d;
                    if candidate < scratch.dist[nb] {
                        scratch.dist[nb] = candidate;
                        scratch.prev[nb] = node;
                    }
                }
            }
        }
        let mut stats = FloodStats::default();
        for node in 0..n {
            if node == origin.0 || scratch.dist[node] == SimDuration::MAX {
                continue;
            }
            // Walk predecessors back to the origin to recover the path.
            scratch.path_buf.clear();
            let mut at = node;
            while at != origin.0 {
                let p = scratch.prev[at];
                scratch.path_buf.push(unordered(NodeId(p), NodeId(at)));
                at = p;
            }
            scratch.path_buf.reverse();
            // A drop on any committed tree edge loses the delivery (and,
            // implicitly, everything relayed through the same edge).
            if scratch
                .path_buf
                .iter()
                .any(|&(a, b)| scratch.edge_drop[a.0 * n + b.0] == scratch.epoch)
            {
                stats.dropped += 1;
                continue;
            }
            stats.delivered += 1;
            visit(NodeId(node), scratch.dist[node], &scratch.path_buf);
        }
        stats
    }

    /// Whether every edge on a relay path is currently usable (adjacent under
    /// the topology and not severed by a partition). An in-flight delivery
    /// whose path fails this check at arrival time crossed a cut and is lost.
    pub fn path_open(&self, path: &[(NodeId, NodeId)]) -> bool {
        path.iter().all(|&(a, b)| self.connected(a, b))
    }

    /// Counts the announcement pushes of a peer-sampled epidemic (rumor)
    /// sweep from `origin`: starting at the origin, each newly infected node
    /// pushes the rumor to `fanout` neighbors drawn uniformly (with
    /// replacement) from its adjacency list. Every push over a live edge
    /// costs one transmission whether or not the target already heard the
    /// rumor; pushes whose edge is severed by a partition cross nothing and
    /// cost nothing. Nodes flagged in the scratch's avoid mask neither
    /// receive nor relay (the origin, as in [`Network::flood_with`], always
    /// pushes).
    ///
    /// The sweep reuses the caller's [`FloodScratch`] — adjacency comes from
    /// the same CSR cache the floods use and the infected set lives in the
    /// scratch's epoch-reset buffers — and draws only from the RNG handed in,
    /// so callers give it a dedicated stream to keep the rest of a
    /// deterministic simulation unperturbed. Transmissions are bounded by
    /// `fanout × n` (each node pushes at most once).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of range.
    pub fn epidemic_transmissions<R: Rng + ?Sized>(
        &self,
        origin: NodeId,
        fanout: usize,
        scratch: &mut FloodScratch,
        rng: &mut R,
    ) -> u64 {
        assert!(origin.0 < self.n, "origin out of range");
        let n = self.n;
        scratch.prepare(&self.topology, n);
        // `visited` doubles as the infected set for this sweep.
        scratch.visited[origin.0] = true;
        let mut frontier = vec![origin.0];
        let mut next = Vec::new();
        let mut transmissions = 0u64;
        while !frontier.is_empty() {
            for &node in &frontier {
                let deg = scratch.adj_off[node + 1] - scratch.adj_off[node];
                if deg == 0 {
                    continue;
                }
                for _ in 0..fanout {
                    let pick = scratch.adj[scratch.adj_off[node] + rng.gen_range(0..deg)];
                    let (lo, hi) = if node <= pick {
                        (node, pick)
                    } else {
                        (pick, node)
                    };
                    if self.cut.contains(&(NodeId(lo), NodeId(hi))) {
                        continue;
                    }
                    transmissions += 1;
                    if !scratch.visited[pick] && !scratch.avoided(pick) {
                        scratch.visited[pick] = true;
                        next.push(pick);
                    }
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }
        transmissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_sim::RngHub;

    fn rng() -> rand::rngs::StdRng {
        RngHub::new(9).stream("net")
    }

    #[test]
    fn full_mesh_floods_in_one_hop() {
        let net = Network::new(4, Topology::FullMesh, LinkSpec::instant());
        let arrivals = net.flood(NodeId(0), 0, &mut rng());
        assert_eq!(arrivals.len(), 3);
        assert!(arrivals.values().all(|&d| d == SimDuration::ZERO));
    }

    #[test]
    fn ring_flood_accumulates_hops() {
        let mut net = Network::new(5, Topology::Ring, LinkSpec::instant());
        // Make delays visible: constant 10 ms per hop.
        let spec = LinkSpec {
            latency: blockfed_sim::UniformJitter::constant(SimDuration::from_millis(10)),
            bandwidth: None,
            loss_rate: 0.0,
        };
        for a in 0..5 {
            for b in 0..5 {
                if a < b {
                    net.set_link(NodeId(a), NodeId(b), spec);
                }
            }
        }
        let arrivals = net.flood(NodeId(0), 0, &mut rng());
        // Farthest node on a 5-ring is 2 hops away.
        assert_eq!(arrivals[&NodeId(1)], SimDuration::from_millis(10));
        assert_eq!(arrivals[&NodeId(2)], SimDuration::from_millis(20));
        assert_eq!(arrivals[&NodeId(3)], SimDuration::from_millis(20));
        assert_eq!(arrivals[&NodeId(4)], SimDuration::from_millis(10));
    }

    #[test]
    fn partition_blocks_direct_traffic_but_not_relays() {
        let mut net = Network::new(3, Topology::FullMesh, LinkSpec::instant());
        net.partition(NodeId(0), NodeId(1));
        assert!(net.delay(NodeId(0), NodeId(1), 0, &mut rng()).is_none());
        assert!(net.delay(NodeId(0), NodeId(2), 0, &mut rng()).is_some());
        // Flood still reaches node 1 via node 2.
        let arrivals = net.flood(NodeId(0), 0, &mut rng());
        assert!(arrivals.contains_key(&NodeId(1)));
    }

    #[test]
    fn full_partition_isolates() {
        let mut net = Network::new(4, Topology::FullMesh, LinkSpec::instant());
        net.partition_halves(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        let arrivals = net.flood(NodeId(0), 0, &mut rng());
        assert!(arrivals.contains_key(&NodeId(1)));
        assert!(!arrivals.contains_key(&NodeId(2)));
        assert!(!arrivals.contains_key(&NodeId(3)));
        net.heal_all();
        let healed = net.flood(NodeId(0), 0, &mut rng());
        assert_eq!(healed.len(), 3);
    }

    #[test]
    fn heal_restores_single_link() {
        let mut net = Network::new(2, Topology::FullMesh, LinkSpec::instant());
        net.partition(NodeId(0), NodeId(1));
        assert!(!net.connected(NodeId(0), NodeId(1)));
        net.heal(NodeId(0), NodeId(1));
        assert!(net.connected(NodeId(0), NodeId(1)));
    }

    #[test]
    fn payload_size_slows_flood() {
        let spec = LinkSpec {
            latency: blockfed_sim::UniformJitter::constant(SimDuration::ZERO),
            bandwidth: Some(1_000_000),
            loss_rate: 0.0,
        };
        let net = Network::new(2, Topology::FullMesh, spec);
        let small = net.flood(NodeId(0), 1_000, &mut rng());
        let big = net.flood(NodeId(0), 21_200_000, &mut rng());
        assert!(big[&NodeId(1)] > small[&NodeId(1)]);
        // 21.2 MB at 1 MB/s ≈ 21.2 s.
        assert!((big[&NodeId(1)].as_secs_f64() - 21.2).abs() < 0.1);
    }

    #[test]
    fn link_overrides_apply_symmetrically() {
        let mut net = Network::new(2, Topology::FullMesh, LinkSpec::lan());
        net.set_link(NodeId(1), NodeId(0), LinkSpec::instant());
        assert_eq!(net.link(NodeId(0), NodeId(1)), LinkSpec::instant());
    }

    #[test]
    fn flood_is_deterministic_per_seed() {
        let net = Network::new(6, Topology::FullMesh, LinkSpec::lan());
        let a = net.flood(NodeId(2), 500, &mut RngHub::new(3).stream("f"));
        let b = net.flood(NodeId(2), 500, &mut RngHub::new(3).stream("f"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_network_rejected() {
        let _ = Network::new(0, Topology::FullMesh, LinkSpec::lan());
    }

    #[test]
    fn avoided_nodes_neither_receive_nor_relay() {
        // Ring 0-1-2-3-4: avoiding node 1 forces traffic the long way round,
        // and node 1 itself gets nothing.
        let net = Network::new(5, Topology::Ring, LinkSpec::instant());
        let avoid: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        let routes = net.flood_routes_avoiding(NodeId(0), 0, &mut rng(), &avoid);
        let nodes: Vec<usize> = routes.iter().map(|d| d.node.0).collect();
        assert_eq!(nodes, vec![2, 3, 4]);
        for d in &routes {
            assert!(
                !d.path
                    .iter()
                    .any(|&(a, b)| a == NodeId(1) || b == NodeId(1)),
                "delivery to {} relayed through the avoided node: {:?}",
                d.node,
                d.path
            );
        }
        // RNG consumption matches the unrestricted flood.
        let a = net.flood_routes_avoiding(NodeId(0), 0, &mut RngHub::new(5).stream("r"), &avoid);
        let b = net.flood_routes(NodeId(0), 0, &mut RngHub::new(5).stream("r"));
        assert_eq!(a.len() + 1, b.len());
    }

    #[test]
    fn flood_routes_match_flood_and_record_paths() {
        let net = Network::new(5, Topology::Ring, LinkSpec::lan());
        let routes = net.flood_routes(NodeId(0), 500, &mut RngHub::new(4).stream("f"));
        let plain = net.flood(NodeId(0), 500, &mut RngHub::new(4).stream("f"));
        assert_eq!(routes.len(), plain.len());
        for d in &routes {
            // Same RNG stream ⇒ identical delays through either API.
            assert_eq!(plain[&d.node], d.delay);
            // Path starts at the origin and ends at the receiver.
            assert!(!d.path.is_empty());
            let first = d.path[0];
            assert!(first.0 == NodeId(0) || first.1 == NodeId(0));
            let last = d.path[d.path.len() - 1];
            assert!(last.0 == d.node || last.1 == d.node);
        }
    }

    #[test]
    fn partition_mid_flood_drops_in_flight_deliveries_crossing_the_cut() {
        // Regression: a partition injected *after* a flood was scheduled but
        // *before* its deliveries arrive must drop the deliveries that cross
        // the cut. The caller-side protocol is: keep the delivery's path, and
        // at arrival time drop it unless `path_open` still holds.
        let mut net = Network::new(4, Topology::Ring, LinkSpec::lan());
        let routes = net.flood_routes(NodeId(0), 1_000, &mut rng());
        assert_eq!(routes.len(), 3, "ring fully reachable before the cut");
        // All paths open while the network is intact.
        assert!(routes.iter().all(|d| net.path_open(&d.path)));

        // Mid-flight, the 0–1 edge is severed.
        net.partition(NodeId(0), NodeId(1));
        let crossing: Vec<&FloodDelivery> = routes
            .iter()
            .filter(|d| d.path.contains(&(NodeId(0), NodeId(1))))
            .collect();
        assert!(
            !crossing.is_empty(),
            "at least node 1 must have routed over the cut edge"
        );
        for d in &crossing {
            assert!(
                !net.path_open(&d.path),
                "delivery to {} crossed the cut but path stayed open",
                d.node
            );
        }
        // Deliveries routed the other way around the ring are unaffected.
        let spared: Vec<&FloodDelivery> = routes
            .iter()
            .filter(|d| !d.path.contains(&(NodeId(0), NodeId(1))))
            .collect();
        assert!(!spared.is_empty());
        assert!(spared.iter().all(|d| net.path_open(&d.path)));
        // Healing restores the in-flight path.
        net.heal_all();
        assert!(routes.iter().all(|d| net.path_open(&d.path)));
    }

    #[test]
    fn self_delay_is_none() {
        let net = Network::new(2, Topology::FullMesh, LinkSpec::lan());
        assert!(net.delay(NodeId(0), NodeId(0), 0, &mut rng()).is_none());
    }

    #[test]
    fn lossless_flood_reports_zero_drops_and_full_delivery() {
        let net = Network::new(6, Topology::FullMesh, LinkSpec::lan());
        let mut scratch = FloodScratch::new();
        let stats = net.flood_with(NodeId(0), 1_000, &mut rng(), &mut scratch, |_, _, _| {});
        assert_eq!(
            stats,
            FloodStats {
                delivered: 5,
                dropped: 0
            }
        );
    }

    #[test]
    fn lossy_flood_meters_dropped_deliveries() {
        // 8-peer mesh at 20% per-edge loss: every delivery rides one direct
        // edge, so across a few seeds some floods must lose deliveries —
        // and delivered + dropped always accounts for every reachable node.
        let net = Network::new(8, Topology::FullMesh, LinkSpec::lan().with_loss(0.2));
        let mut scratch = FloodScratch::new();
        let mut saw_drop = false;
        for seed in 0..20u64 {
            let mut rng = RngHub::new(seed).stream("lossy");
            let mut visited = 0usize;
            let stats = net.flood_with(NodeId(0), 1_000, &mut rng, &mut scratch, |_, _, _| {
                visited += 1;
            });
            assert_eq!(stats.delivered, visited);
            assert_eq!(stats.delivered + stats.dropped, 7);
            saw_drop |= stats.dropped > 0;
        }
        assert!(saw_drop, "20 lossy floods never dropped a delivery");
    }

    #[test]
    fn total_loss_drops_every_delivery() {
        let net = Network::new(5, Topology::Ring, LinkSpec::lan().with_loss(1.0));
        let mut scratch = FloodScratch::new();
        let stats = net.flood_with(NodeId(0), 100, &mut rng(), &mut scratch, |node, _, _| {
            panic!("delivery to {node} survived total loss")
        });
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 4);
    }

    #[test]
    fn lossy_floods_are_deterministic_per_seed() {
        let net = Network::new(9, Topology::Ring, LinkSpec::lan().with_loss(0.1));
        let mut scratch = FloodScratch::new();
        let run = |scratch: &mut FloodScratch| {
            let mut out = Vec::new();
            let stats = net.flood_with(
                NodeId(3),
                500,
                &mut RngHub::new(11).stream("det"),
                scratch,
                |node, delay, _| out.push((node, delay)),
            );
            (stats, out)
        };
        let a = run(&mut scratch);
        let b = run(&mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_loss_floods_consume_rng_like_lossless_links() {
        // A loss_rate of exactly 0.0 must not draw the drop decision, so the
        // committed delay tree — and everything downstream of the shared RNG
        // stream — is bit-identical to a link built without loss.
        let lossless = Network::new(7, Topology::Ring, LinkSpec::lan());
        let zero_loss = Network::new(7, Topology::Ring, LinkSpec::lan().with_loss(0.0));
        let a = lossless.flood(NodeId(0), 2_000, &mut RngHub::new(21).stream("z"));
        let b = zero_loss.flood(NodeId(0), 2_000, &mut RngHub::new(21).stream("z"));
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_flood_matches_allocating_api_across_topologies() {
        // One shared scratch, reused across different topologies and sizes:
        // per-seed results and RNG consumption must match the allocating API
        // exactly (same deliveries, same delays, same paths).
        let mut scratch = FloodScratch::new();
        let topologies = [
            Topology::FullMesh,
            Topology::Ring,
            Topology::Star { hub: NodeId(1) },
            Topology::Custom(vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(0), NodeId(3)),
                (NodeId(1), NodeId(4)),
            ]),
        ];
        for (i, topo) in topologies.into_iter().enumerate() {
            for n in [2usize, 5, 9] {
                if matches!(topo, Topology::Custom(_)) && n < 5 {
                    continue;
                }
                let net = Network::new(n, topo.clone(), LinkSpec::lan());
                let avoid: HashSet<NodeId> = if n > 3 {
                    [NodeId(2)].into_iter().collect()
                } else {
                    HashSet::new()
                };
                let seed = 100 + i as u64;
                let reference = net.flood_routes_avoiding(
                    NodeId(0),
                    700,
                    &mut RngHub::new(seed).stream("eq"),
                    &avoid,
                );
                scratch.set_avoid((0..n).map(|v| avoid.contains(&NodeId(v))));
                let mut via_scratch = Vec::new();
                let mut reused_rng = RngHub::new(seed).stream("eq");
                net.flood_with(
                    NodeId(0),
                    700,
                    &mut reused_rng,
                    &mut scratch,
                    |node, delay, path| {
                        via_scratch.push(FloodDelivery {
                            node,
                            delay,
                            path: path.to_vec(),
                        });
                    },
                );
                assert_eq!(reference, via_scratch, "topology #{i} n={n}");
            }
        }
    }

    #[test]
    fn epidemic_sweep_is_bounded_and_deterministic() {
        let net = Network::new(48, Topology::FullMesh, LinkSpec::lan());
        let mut scratch = FloodScratch::new();
        let run = |scratch: &mut FloodScratch| {
            net.epidemic_transmissions(
                NodeId(0),
                3,
                scratch,
                &mut RngHub::new(7).stream("epidemic"),
            )
        };
        let a = run(&mut scratch);
        let b = run(&mut scratch);
        assert_eq!(a, b, "same seed, same sweep");
        assert!(a > 0);
        // Each node pushes at most once: fanout × n is a hard ceiling, far
        // below the n² edge count a full-mesh flood announcement rides.
        assert!(a <= 3 * 48);
    }

    #[test]
    fn epidemic_pushes_over_cut_edges_cost_nothing() {
        let mut net = Network::new(6, Topology::FullMesh, LinkSpec::lan());
        let left: Vec<NodeId> = (0..3).map(NodeId).collect();
        let right: Vec<NodeId> = (3..6).map(NodeId).collect();
        net.partition_halves(&left, &right);
        let mut scratch = FloodScratch::new();
        // With the far half unreachable, at most the origin's half (3 nodes)
        // ever gets infected, and only intra-half pushes are charged.
        let t = net.epidemic_transmissions(
            NodeId(0),
            4,
            &mut scratch,
            &mut RngHub::new(11).stream("epidemic"),
        );
        assert!(t <= 4 * 3, "cut pushes were metered: {t}");
    }

    #[test]
    fn epidemic_avoided_nodes_neither_receive_nor_relay() {
        let net = Network::new(5, Topology::FullMesh, LinkSpec::lan());
        let mut scratch = FloodScratch::new();
        scratch.set_avoid([false, true, true, true, true]);
        // Everyone but the origin is avoided: nobody gets infected, so only
        // the origin's own fanout pushes are ever made.
        let t = net.epidemic_transmissions(
            NodeId(0),
            3,
            &mut scratch,
            &mut RngHub::new(13).stream("epidemic"),
        );
        assert_eq!(t, 3);
    }

    #[test]
    fn scratch_avoid_mask_persists_until_reset() {
        let net = Network::new(4, Topology::FullMesh, LinkSpec::instant());
        let mut scratch = FloodScratch::new();
        scratch.set_avoid([false, true, false, false]);
        let mut reached = Vec::new();
        net.flood_with(NodeId(0), 0, &mut rng(), &mut scratch, |node, _, _| {
            reached.push(node.0)
        });
        assert_eq!(reached, vec![2, 3]);
        // Same mask applies to the next flood until cleared.
        reached.clear();
        net.flood_with(NodeId(2), 0, &mut rng(), &mut scratch, |node, _, _| {
            reached.push(node.0)
        });
        assert_eq!(reached, vec![0, 3]);
        scratch.set_avoid(std::iter::empty());
        reached.clear();
        net.flood_with(NodeId(0), 0, &mut rng(), &mut scratch, |node, _, _| {
            reached.push(node.0)
        });
        assert_eq!(reached, vec![1, 2, 3]);
    }
}
