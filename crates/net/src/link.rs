//! Point-to-point link models: latency, jitter, bandwidth, loss.

use blockfed_sim::{SimDuration, UniformJitter};
use rand::Rng;

/// A rejected link configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// The loss rate is outside `[0, 1]` (or not a number).
    InvalidLossRate {
        /// The offending rate.
        got: f64,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::InvalidLossRate { got } => {
                write!(f, "loss rate must be a probability in [0, 1], got {got}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// The transmission characteristics of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Propagation latency model (base + uniform jitter).
    pub latency: UniformJitter,
    /// Bytes per second; `None` means infinite bandwidth (no serialization
    /// delay). Model payloads of 21.2 MB make this term matter.
    pub bandwidth: Option<u64>,
    /// Probability in `[0, 1]` that a message is lost on this link.
    pub loss_rate: f64,
}

impl LinkSpec {
    /// A LAN-ish default: 2 ms ± 1 ms, 1 Gbit/s, lossless — the paper's three
    /// VMs on one physical host.
    pub fn lan() -> Self {
        LinkSpec {
            latency: UniformJitter::new(SimDuration::from_millis(2), SimDuration::from_millis(1)),
            bandwidth: Some(125_000_000), // 1 Gbit/s in bytes/s
            loss_rate: 0.0,
        }
    }

    /// A WAN-ish profile: 40 ms ± 20 ms, 100 Mbit/s.
    pub fn wan() -> Self {
        LinkSpec {
            latency: UniformJitter::new(SimDuration::from_millis(40), SimDuration::from_millis(20)),
            bandwidth: Some(12_500_000),
            loss_rate: 0.0,
        }
    }

    /// An ideal instantaneous link (unit tests).
    pub fn instant() -> Self {
        LinkSpec {
            latency: UniformJitter::constant(SimDuration::ZERO),
            bandwidth: None,
            loss_rate: 0.0,
        }
    }

    /// Sets the loss rate (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 1]`. Fallible callers (scenario
    /// specs, config lowering) should use [`LinkSpec::try_with_loss`].
    #[must_use]
    pub fn with_loss(self, rate: f64) -> Self {
        self.try_with_loss(rate)
            .expect("loss rate must be a probability")
    }

    /// Sets the loss rate, rejecting anything outside `[0, 1]` with a typed
    /// error instead of a panic.
    pub fn try_with_loss(mut self, rate: f64) -> Result<Self, LinkError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(LinkError::InvalidLossRate { got: rate });
        }
        self.loss_rate = rate;
        Ok(self)
    }

    /// Validates the spec; currently only the loss rate can be out of range
    /// (a `LinkSpec` literal bypasses the `with_loss` check).
    pub fn validate(&self) -> Result<(), LinkError> {
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(LinkError::InvalidLossRate {
                got: self.loss_rate,
            });
        }
        Ok(())
    }

    /// Samples whether a message is dropped on this link. Draws from `rng`
    /// only when the link is lossy, so a `loss_rate: 0.0` link consumes no
    /// randomness — lossless runs stay bit-identical to builds without loss.
    pub fn sample_drop<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.loss_rate > 0.0 && rng.gen_range(0.0..1.0) < self.loss_rate
    }

    /// Samples the one-way transmission delay (latency + serialization) for a
    /// message of `bytes`, independent of loss. Floods use this to commit
    /// their relay tree by delay and account drops separately via
    /// [`LinkSpec::sample_drop`].
    pub fn transmit_delay<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> SimDuration {
        let mut d = self.latency.sample(rng);
        if let Some(bw) = self.bandwidth {
            assert!(bw > 0, "bandwidth must be positive");
            d += SimDuration::from_secs_f64(bytes as f64 / bw as f64);
        }
        d
    }

    /// Samples the one-way delay for a message of `bytes`, or `None` if the
    /// message is lost — the unicast view, where loss and delay are one draw.
    pub fn delay<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> Option<SimDuration> {
        if self.sample_drop(rng) {
            return None;
        }
        Some(self.transmit_delay(bytes, rng))
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_sim::RngHub;

    #[test]
    fn lan_delay_within_bounds() {
        let link = LinkSpec::lan();
        let mut rng = RngHub::new(1).stream("l");
        for _ in 0..100 {
            let d = link.delay(0, &mut rng).unwrap();
            assert!(d >= SimDuration::from_millis(2));
            assert!(d <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let link = LinkSpec {
            latency: UniformJitter::constant(SimDuration::ZERO),
            bandwidth: Some(1_000_000), // 1 MB/s
            loss_rate: 0.0,
        };
        let mut rng = RngHub::new(2).stream("l");
        let d = link.delay(21_200_000, &mut rng).unwrap(); // the 21.2 MB model
        assert!((d.as_secs_f64() - 21.2).abs() < 0.01, "{d}");
        let small = link.delay(248_000, &mut rng).unwrap(); // SimpleNN
        assert!(small < d);
    }

    #[test]
    fn infinite_bandwidth_ignores_size() {
        let link = LinkSpec::instant();
        let mut rng = RngHub::new(3).stream("l");
        assert_eq!(link.delay(u64::MAX / 2, &mut rng), Some(SimDuration::ZERO));
    }

    #[test]
    fn loss_drops_roughly_the_right_fraction() {
        let link = LinkSpec::instant().with_loss(0.3);
        let mut rng = RngHub::new(4).stream("l");
        let n = 10_000;
        let lost = (0..n).filter(|_| link.delay(0, &mut rng).is_none()).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_rejected() {
        let _ = LinkSpec::lan().with_loss(1.5);
    }

    #[test]
    fn try_with_loss_returns_typed_error() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let err = LinkSpec::lan().try_with_loss(bad).unwrap_err();
            assert!(matches!(err, LinkError::InvalidLossRate { .. }));
            assert!(err.to_string().contains("probability"), "{err}");
        }
        let ok = LinkSpec::lan().try_with_loss(0.05).unwrap();
        assert_eq!(ok.loss_rate, 0.05);
        assert!(ok.validate().is_ok());
        // A hand-built spec that bypassed the builder is still caught.
        let mut raw = LinkSpec::lan();
        raw.loss_rate = 2.0;
        assert!(raw.validate().is_err());
    }

    #[test]
    fn transmit_delay_matches_delay_on_lossless_links() {
        // On a lossless link the two samplers consume RNG identically.
        let link = LinkSpec::lan();
        let mut a = RngHub::new(6).stream("l");
        let mut b = RngHub::new(6).stream("l");
        for bytes in [0u64, 1_000, 250_000] {
            assert_eq!(
                Some(link.transmit_delay(bytes, &mut a)),
                link.delay(bytes, &mut b)
            );
        }
    }

    #[test]
    fn sample_drop_draws_nothing_at_zero_loss() {
        let link = LinkSpec::lan();
        let mut a = RngHub::new(7).stream("l");
        let mut b = RngHub::new(7).stream("l");
        use rand::Rng;
        assert!(!link.sample_drop(&mut a));
        // `a` consumed nothing: both streams still agree.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn profiles_are_ordered() {
        let mut rng = RngHub::new(5).stream("l");
        let lan = LinkSpec::lan().delay(1000, &mut rng).unwrap();
        let wan = LinkSpec::wan().delay(1000, &mut rng).unwrap();
        assert!(wan > lan);
    }
}
