//! Discrete-event peer-to-peer network simulation for `blockfed`.
//!
//! Models what the paper's three-VM private Ethereum network does physically:
//! point-to-point links with latency, jitter, bandwidth (so 21.2 MB model
//! payloads cost what they should) and per-edge packet loss — unicast drops
//! via [`LinkSpec::delay`], flood drops committed on the relay tree and
//! metered by [`net::FloodStats`]; topologies; gossip flooding with duplicate
//! suppression; and partition fault injection.
//!
//! # Examples
//!
//! ```
//! use blockfed_net::{LinkSpec, Network, NodeId, Topology};
//! use rand::SeedableRng;
//!
//! let net = Network::new(3, Topology::FullMesh, LinkSpec::lan());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let arrivals = net.flood(NodeId(0), 253_952, &mut rng);
//! assert_eq!(arrivals.len(), 2); // both other peers reached
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gossip;
pub mod link;
pub mod net;
pub mod topology;

pub use gossip::{GossipMode, GossipTracker, ANNOUNCE_BYTES};
pub use link::{LinkError, LinkSpec};
pub use net::{FloodDelivery, FloodScratch, FloodStats, Network};
pub use topology::{NodeId, Topology};
