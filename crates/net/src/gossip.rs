//! Gossip bookkeeping: dissemination modes and per-node duplicate
//! suppression.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::topology::NodeId;

/// Bytes of a fixed-size artifact announcement: the artifact's 32-byte
/// fingerprint, a 32-byte carrying-transaction hash, and ~64 bytes of round,
/// declared size, sender, and signature — what a peer needs to decide whether
/// to pull the payload and whom to pull it from.
pub const ANNOUNCE_BYTES: u64 = 128;

/// How large artifacts (model payloads) are disseminated.
///
/// All modes drive the *same* simulation: an artifact reaches each peer over
/// its shortest open relay path at the same virtual instant, so runs are
/// bit-identical across modes — only the traffic accounting differs. The mode
/// answers "what crosses the wire": the whole artifact on every relay edge,
/// a digest-sized announcement plus exactly one pulled copy per peer, or a
/// peer-sampled epidemic rumor whose announcement traffic stops scaling with
/// edge count entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GossipMode {
    /// Legacy full-payload flooding: every relay edge of the flood tree
    /// carries the whole artifact. `gossip_bytes` grows as
    /// `payload × edges`; nothing is accounted as a fetch.
    Full,
    /// Two-phase announce/fetch (the default): floods carry an
    /// [`ANNOUNCE_BYTES`]-sized announcement; each peer lacking the payload
    /// pulls exactly one copy over its shortest open path. Flood traffic
    /// drops to `digest × edges` while payload movement — `payload` once per
    /// receiving peer — is accounted separately as fetch traffic.
    #[default]
    AnnounceFetch,
    /// Peer-sampled epidemic announcements: instead of relaying the
    /// announcement over every edge of the flood tree, each infected node
    /// pushes it to `fanout` neighbors sampled from a dedicated RNG stream
    /// (epoch-stamped like the flood scratch), and *every* message larger
    /// than an announcement — model artifacts, blocks, control transactions —
    /// is announced and pulled rather than pushed whole. Announcement
    /// traffic is bounded by `digest × fanout × nodes` regardless of edge
    /// count; bodies are accounted as fetch traffic per receiving peer.
    Epidemic {
        /// Sampled push targets per infected node, per rumor.
        fanout: usize,
    },
}

impl std::fmt::Display for GossipMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GossipMode::Full => write!(f, "full"),
            GossipMode::AnnounceFetch => write!(f, "announce-fetch"),
            GossipMode::Epidemic { fanout } => write!(f, "epidemic-f{fanout}"),
        }
    }
}

/// Tracks which messages each node has already seen, so flooding relays each
/// message exactly once per node.
///
/// # Examples
///
/// ```
/// use blockfed_net::{GossipTracker, NodeId};
///
/// let mut seen: GossipTracker<u64> = GossipTracker::new();
/// assert!(seen.first_seen(NodeId(0), 42));
/// assert!(!seen.first_seen(NodeId(0), 42));
/// assert!(seen.first_seen(NodeId(1), 42));
/// ```
#[derive(Debug, Clone)]
pub struct GossipTracker<Id: Eq + Hash> {
    seen: HashMap<NodeId, HashSet<Id>>,
}

impl<Id: Eq + Hash> Default for GossipTracker<Id> {
    fn default() -> Self {
        GossipTracker {
            seen: HashMap::new(),
        }
    }
}

impl<Id: Eq + Hash> GossipTracker<Id> {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` received `id`; returns `true` on first receipt.
    pub fn first_seen(&mut self, node: NodeId, id: Id) -> bool {
        self.seen.entry(node).or_default().insert(id)
    }

    /// Whether `node` has seen `id`.
    pub fn has_seen(&self, node: NodeId, id: &Id) -> bool {
        self.seen.get(&node).is_some_and(|s| s.contains(id))
    }

    /// How many distinct messages `node` has seen.
    pub fn count_for(&self, node: NodeId) -> usize {
        self.seen.get(&node).map(HashSet::len).unwrap_or(0)
    }

    /// Forgets everything (e.g. between experiment repetitions).
    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_mode_defaults_to_announce_fetch_and_displays() {
        assert_eq!(GossipMode::default(), GossipMode::AnnounceFetch);
        assert_eq!(GossipMode::Full.to_string(), "full");
        assert_eq!(GossipMode::AnnounceFetch.to_string(), "announce-fetch");
        assert_eq!(
            GossipMode::Epidemic { fanout: 3 }.to_string(),
            "epidemic-f3"
        );
        // The announcement must be digest-sized: far below even the small
        // (248 KB) model artifact, or announce/fetch could never win.
        let bound = 253_952 / 100;
        assert!(ANNOUNCE_BYTES < bound);
    }

    #[test]
    fn duplicate_suppression_is_per_node() {
        let mut t: GossipTracker<&str> = GossipTracker::new();
        assert!(t.first_seen(NodeId(0), "m1"));
        assert!(!t.first_seen(NodeId(0), "m1"));
        assert!(t.first_seen(NodeId(1), "m1"));
        assert!(t.first_seen(NodeId(0), "m2"));
        assert_eq!(t.count_for(NodeId(0)), 2);
        assert_eq!(t.count_for(NodeId(1)), 1);
        assert_eq!(t.count_for(NodeId(9)), 0);
    }

    #[test]
    fn has_seen_is_read_only() {
        let mut t: GossipTracker<u32> = GossipTracker::new();
        assert!(!t.has_seen(NodeId(0), &7));
        t.first_seen(NodeId(0), 7);
        assert!(t.has_seen(NodeId(0), &7));
        assert!(!t.has_seen(NodeId(1), &7));
    }

    #[test]
    fn clear_forgets() {
        let mut t: GossipTracker<u32> = GossipTracker::new();
        t.first_seen(NodeId(0), 1);
        t.clear();
        assert!(!t.has_seen(NodeId(0), &1));
        assert!(t.first_seen(NodeId(0), 1));
    }
}
