//! Gossip bookkeeping: per-node duplicate suppression.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::topology::NodeId;

/// Tracks which messages each node has already seen, so flooding relays each
/// message exactly once per node.
///
/// # Examples
///
/// ```
/// use blockfed_net::{GossipTracker, NodeId};
///
/// let mut seen: GossipTracker<u64> = GossipTracker::new();
/// assert!(seen.first_seen(NodeId(0), 42));
/// assert!(!seen.first_seen(NodeId(0), 42));
/// assert!(seen.first_seen(NodeId(1), 42));
/// ```
#[derive(Debug, Clone)]
pub struct GossipTracker<Id: Eq + Hash> {
    seen: HashMap<NodeId, HashSet<Id>>,
}

impl<Id: Eq + Hash> Default for GossipTracker<Id> {
    fn default() -> Self {
        GossipTracker {
            seen: HashMap::new(),
        }
    }
}

impl<Id: Eq + Hash> GossipTracker<Id> {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` received `id`; returns `true` on first receipt.
    pub fn first_seen(&mut self, node: NodeId, id: Id) -> bool {
        self.seen.entry(node).or_default().insert(id)
    }

    /// Whether `node` has seen `id`.
    pub fn has_seen(&self, node: NodeId, id: &Id) -> bool {
        self.seen.get(&node).is_some_and(|s| s.contains(id))
    }

    /// How many distinct messages `node` has seen.
    pub fn count_for(&self, node: NodeId) -> usize {
        self.seen.get(&node).map(HashSet::len).unwrap_or(0)
    }

    /// Forgets everything (e.g. between experiment repetitions).
    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_suppression_is_per_node() {
        let mut t: GossipTracker<&str> = GossipTracker::new();
        assert!(t.first_seen(NodeId(0), "m1"));
        assert!(!t.first_seen(NodeId(0), "m1"));
        assert!(t.first_seen(NodeId(1), "m1"));
        assert!(t.first_seen(NodeId(0), "m2"));
        assert_eq!(t.count_for(NodeId(0)), 2);
        assert_eq!(t.count_for(NodeId(1)), 1);
        assert_eq!(t.count_for(NodeId(9)), 0);
    }

    #[test]
    fn has_seen_is_read_only() {
        let mut t: GossipTracker<u32> = GossipTracker::new();
        assert!(!t.has_seen(NodeId(0), &7));
        t.first_seen(NodeId(0), 7);
        assert!(t.has_seen(NodeId(0), &7));
        assert!(!t.has_seen(NodeId(1), &7));
    }

    #[test]
    fn clear_forgets() {
        let mut t: GossipTracker<u32> = GossipTracker::new();
        t.first_seen(NodeId(0), 1);
        t.clear();
        assert!(!t.has_seen(NodeId(0), &1));
        assert!(t.first_seen(NodeId(0), 1));
    }
}
