//! ASCII line charts — terminal renditions of the paper's Figures 3 and 4.

use std::fmt;

/// A multi-series line chart rendered with terminal characters.
///
/// # Examples
///
/// ```
/// use blockfed_report::LinePlot;
///
/// let mut p = LinePlot::new("accuracy vs round", 40, 10);
/// p.series("consider", &[0.2, 0.4, 0.5, 0.6]);
/// p.series("not consider", &[0.3, 0.38, 0.52, 0.59]);
/// let s = p.to_string();
/// assert!(s.contains("consider"));
/// ```
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<(String, Vec<f64>)>,
}

const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl LinePlot {
    /// Creates a plot canvas of `width × height` characters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "plot must be at least 2x2");
        LinePlot {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a named series.
    pub fn series(&mut self, name: impl Into<String>, values: &[f64]) {
        self.series.push((name.into(), values.to_vec()));
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

impl fmt::Display for LinePlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let all: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .filter(|v| v.is_finite())
            .collect();
        if all.is_empty() {
            return writeln!(f, "(no data)");
        }
        let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = if (hi - lo).abs() < 1e-12 {
            1.0
        } else {
            hi - lo
        };
        let max_len = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for (i, &v) in values.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                let x = if max_len <= 1 {
                    0
                } else {
                    i * (self.width - 1) / (max_len - 1)
                };
                let yf = (v - lo) / span;
                let y = ((1.0 - yf) * (self.height - 1) as f64).round() as usize;
                grid[y.min(self.height - 1)][x.min(self.width - 1)] = mark;
            }
        }
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{hi:8.4} ")
            } else if i == self.height - 1 {
                format!("{lo:8.4} ")
            } else {
                " ".repeat(9)
            };
            writeln!(f, "{label}|{}", row.iter().collect::<String>())?;
        }
        writeln!(f, "{}+{}", " ".repeat(9), "-".repeat(self.width))?;
        for (si, (name, _)) in self.series.iter().enumerate() {
            writeln!(
                f,
                "{} {} = {}",
                " ".repeat(9),
                MARKS[si % MARKS.len()],
                name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_marks_and_legend() {
        let mut p = LinePlot::new("t", 20, 6);
        p.series("up", &[0.0, 0.5, 1.0]);
        p.series("down", &[1.0, 0.5, 0.0]);
        let s = p.to_string();
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("* = up"));
        assert!(s.contains("o = down"));
        assert_eq!(p.series_count(), 2);
    }

    #[test]
    fn empty_plot_says_no_data() {
        let p = LinePlot::new("t", 10, 4);
        assert!(p.to_string().contains("(no data)"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut p = LinePlot::new("t", 10, 4);
        p.series("flat", &[0.5, 0.5, 0.5]);
        let s = p.to_string();
        assert!(s.contains('*'));
    }

    #[test]
    fn axis_labels_show_extremes() {
        let mut p = LinePlot::new("t", 10, 4);
        p.series("s", &[0.25, 0.75]);
        let s = p.to_string();
        assert!(s.contains("0.7500"));
        assert!(s.contains("0.2500"));
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let mut p = LinePlot::new("t", 10, 4);
        p.series("s", &[f64::NAN, 0.5, f64::INFINITY, 1.0]);
        let s = p.to_string();
        assert!(s.contains("1.0000"));
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_canvas_rejected() {
        let _ = LinePlot::new("t", 1, 5);
    }
}
