//! Aligned text tables in the style of the paper's Tables I–IV.

use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use blockfed_report::Table;
///
/// let mut t = Table::new("demo", &["round", "accuracy"]);
/// t.row(&["1", "0.2263"]);
/// t.row(&["2", "0.3733"]);
/// let s = t.to_string();
/// assert!(s.contains("round"));
/// assert!(s.contains("0.3733"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>| {
            let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
            writeln!(f, "{}", "-".repeat(total))
        };
        line(f)?;
        write!(f, "|")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, " {c:<w$} |")?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)?;
        }
        line(f)
    }
}

/// Formats an accuracy in the paper's four-decimal style (e.g. `0.5953`).
pub fn fmt_acc(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a duration in seconds with three decimals.
pub fn fmt_secs(v: f64) -> String {
    format!("{v:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["x", "1"]);
        t.row(&["yyyyy", "2"]);
        let s = t.to_string();
        assert!(s.contains("| a     | long-header |"));
        assert!(s.contains("| yyyyy | 2           |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "T");
    }

    #[test]
    fn csv_output_escapes() {
        let mut t = Table::new("T", &["name", "note"]);
        t.row(&["plain", "a,b"]);
        t.row(&["q\"q", "fine"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,note\n"));
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_columns_panic() {
        let _ = Table::new("T", &[]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_acc(0.59530001), "0.5953");
        assert_eq!(fmt_secs(13.0), "13.000s");
    }

    #[test]
    fn row_owned_accepts_strings() {
        let mut t = Table::new("T", &["a"]);
        t.row_owned(vec![String::from("v")]);
        assert_eq!(t.len(), 1);
    }
}
