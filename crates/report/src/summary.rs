//! Summary statistics for experiment series.

/// Basic statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Stats`] over a slice, ignoring non-finite values.
///
/// Returns `None` for an empty (or all-non-finite) input.
///
/// # Examples
///
/// ```
/// use blockfed_report::summarize;
///
/// let s = summarize(&[1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// ```
pub fn summarize(values: &[f64]) -> Option<Stats> {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.is_empty() {
        return None;
    }
    let n = clean.len();
    let mean = clean.iter().sum::<f64>() / n as f64;
    let var = clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let min = clean.iter().copied().fold(f64::INFINITY, f64::min);
    let max = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Stats {
        n,
        mean,
        std: var.sqrt(),
        min,
        max,
    })
}

/// The relative change `(b - a) / a`, in percent.
///
/// # Panics
///
/// Panics if `a` is zero.
pub fn percent_change(a: f64, b: f64) -> f64 {
    assert!(a != 0.0, "baseline must be nonzero");
    (b - a) / a * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_nan_inputs() {
        assert!(summarize(&[]).is_none());
        assert!(summarize(&[f64::NAN, f64::INFINITY]).is_none());
        let s = summarize(&[1.0, f64::NAN]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 1.0);
    }

    #[test]
    fn percent_change_signs() {
        assert_eq!(percent_change(2.0, 3.0), 50.0);
        assert_eq!(percent_change(2.0, 1.0), -50.0);
    }

    #[test]
    #[should_panic(expected = "baseline must be nonzero")]
    fn zero_baseline_panics() {
        let _ = percent_change(0.0, 1.0);
    }
}
