//! Experiment reporting: aligned tables (the paper's Tables I–IV), ASCII line
//! charts (Figures 3–4), CSV export, and summary statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod plot;
pub mod summary;
pub mod table;

pub use csv::write_csv;
pub use plot::LinePlot;
pub use summary::{percent_change, summarize, Stats};
pub use table::{fmt_acc, fmt_secs, Table};
