//! CSV export to the `results/` directory.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::table::Table;

/// Writes a table's CSV rendering to `dir/name.csv`, creating the directory.
///
/// Returns the path written.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_csv(dir: impl AsRef<Path>, name: &str, table: &Table) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, table.to_csv())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("blockfed-csv-test-{}", std::process::id()));
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1", "2"]);
        let path = write_csv(&dir, "demo", &t).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
