//! The transaction pool: pending transactions ordered by sender nonce and
//! prioritized by gas price.

use std::collections::{BTreeMap, HashSet};

use blockfed_crypto::{H160, H256};

use crate::gas::intrinsic_gas;
use crate::state::State;
use crate::store::SigCache;
use crate::tx::Transaction;

/// Error admitting a transaction to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MempoolError {
    /// Signature missing or invalid.
    BadSignature,
    /// Nonce below the sender's current account nonce (already spent).
    StaleNonce {
        /// The sender's account nonce.
        current: u64,
        /// The transaction's nonce.
        got: u64,
    },
    /// Same (sender, nonce) already pooled with an equal-or-better price.
    Duplicate,
    /// Gas limit below the intrinsic cost.
    GasTooLow,
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MempoolError::BadSignature => write!(f, "bad signature"),
            MempoolError::StaleNonce { current, got } => {
                write!(f, "stale nonce {got} (account at {current})")
            }
            MempoolError::Duplicate => write!(f, "duplicate transaction"),
            MempoolError::GasTooLow => write!(f, "gas limit below intrinsic cost"),
        }
    }
}

impl std::error::Error for MempoolError {}

/// A per-node transaction pool.
///
/// # Examples
///
/// ```
/// use blockfed_chain::{mempool::Mempool, state::State, tx::Transaction};
/// use blockfed_crypto::KeyPair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let key = KeyPair::generate(&mut rng);
/// let mut state = State::new();
/// state.credit(key.address(), 1_000_000);
/// let mut pool = Mempool::new();
/// let tx = Transaction::transfer(key.address(), key.address(), 1, 0).signed(&key);
/// pool.insert(tx, &state)?;
/// assert_eq!(pool.len(), 1);
/// # Ok::<(), blockfed_chain::mempool::MempoolError>(())
/// ```
#[derive(Debug, Default)]
pub struct Mempool {
    by_sender: BTreeMap<H160, BTreeMap<u64, Transaction>>,
    known: HashSet<H256>,
    sig_cache: SigCache,
}

impl Mempool {
    /// An empty pool with signature caching disabled (every admission
    /// verifies from scratch).
    pub fn new() -> Self {
        Mempool::default()
    }

    /// An empty pool whose admissions verify through a run-scoped
    /// signature-verdict cache (see [`crate::ChainStore::sig_cache`]), so a
    /// transaction gossiped to N peers costs one Schnorr verification
    /// instead of N.
    pub fn with_sig_cache(sig_cache: SigCache) -> Self {
        Mempool {
            sig_cache,
            ..Mempool::default()
        }
    }

    /// Number of pooled transactions.
    pub fn len(&self) -> usize {
        self.by_sender.values().map(BTreeMap::len).sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.by_sender.is_empty()
    }

    /// Whether a transaction with this hash is pooled.
    pub fn contains(&self, hash: &H256) -> bool {
        self.known.contains(hash)
    }

    /// Admits a transaction after validating it against current `state`.
    ///
    /// A replacement for a pooled (sender, nonce) is accepted only at a
    /// strictly higher gas price.
    ///
    /// # Errors
    ///
    /// Returns [`MempoolError`] explaining the rejection.
    pub fn insert(&mut self, tx: Transaction, state: &State) -> Result<(), MempoolError> {
        if tx.verify_signature_with(&self.sig_cache).is_err() {
            return Err(MempoolError::BadSignature);
        }
        if intrinsic_gas(&tx) > tx.gas_limit {
            return Err(MempoolError::GasTooLow);
        }
        let current = state.nonce(&tx.from);
        if tx.nonce < current {
            return Err(MempoolError::StaleNonce {
                current,
                got: tx.nonce,
            });
        }
        let slot = self.by_sender.entry(tx.from).or_default();
        if let Some(existing) = slot.get(&tx.nonce) {
            if existing.gas_price >= tx.gas_price {
                return Err(MempoolError::Duplicate);
            }
            self.known.remove(&existing.hash());
        }
        self.known.insert(tx.hash());
        slot.insert(tx.nonce, tx);
        Ok(())
    }

    /// Selects transactions for a block: highest gas price first, nonces kept
    /// consecutive per sender starting at the account nonce, total intrinsic
    /// gas bounded by `gas_budget`. Selected transactions stay pooled until
    /// [`Mempool::prune`] runs after the block commits.
    pub fn select(&self, state: &State, gas_budget: u64, max_txs: usize) -> Vec<Transaction> {
        // Cursor per sender: next expected nonce.
        let mut cursors: BTreeMap<H160, u64> = self
            .by_sender
            .keys()
            .map(|a| (*a, state.nonce(a)))
            .collect();
        let mut chosen = Vec::new();
        let mut gas_left = gas_budget;
        while chosen.len() < max_txs {
            // Among each sender's next-eligible tx, pick the best gas price
            // (ties: lower sender address, deterministic).
            let mut best: Option<&Transaction> = None;
            for (sender, txs) in &self.by_sender {
                let next_nonce = cursors[sender];
                if let Some(tx) = txs.get(&next_nonce) {
                    let better = match best {
                        None => true,
                        Some(b) => tx.gas_price > b.gas_price,
                    };
                    if better && intrinsic_gas(tx) <= gas_left {
                        best = Some(tx);
                    }
                }
            }
            match best {
                Some(tx) => {
                    gas_left -= intrinsic_gas(tx);
                    *cursors.get_mut(&tx.from).expect("cursor exists") += 1;
                    chosen.push(tx.clone());
                }
                None => break,
            }
        }
        chosen
    }

    /// Drops every pooled transaction whose nonce is now below its sender's
    /// account nonce (i.e. included in a committed block or invalidated).
    pub fn prune(&mut self, state: &State) {
        let mut empty_senders = Vec::new();
        for (sender, txs) in &mut self.by_sender {
            let current = state.nonce(sender);
            let stale: Vec<u64> = txs.range(..current).map(|(n, _)| *n).collect();
            for n in stale {
                if let Some(tx) = txs.remove(&n) {
                    self.known.remove(&tx.hash());
                }
            }
            if txs.is_empty() {
                empty_senders.push(*sender);
            }
        }
        for s in empty_senders {
            self.by_sender.remove(&s);
        }
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.by_sender.clear();
        self.known.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_crypto::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    fn funded(keys: &[&KeyPair]) -> State {
        let mut s = State::new();
        for k in keys {
            s.credit(k.address(), 100_000_000);
        }
        s
    }

    #[test]
    fn insert_and_select_in_nonce_order() {
        let k = key(1);
        let state = funded(&[&k]);
        let mut pool = Mempool::new();
        // Insert out of order.
        for n in [2u64, 0, 1] {
            let tx = Transaction::transfer(k.address(), k.address(), 1, n).signed(&k);
            pool.insert(tx, &state).unwrap();
        }
        assert_eq!(pool.len(), 3);
        let picked = pool.select(&state, u64::MAX, 10);
        let nonces: Vec<u64> = picked.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2]);
    }

    #[test]
    fn gas_price_priority_across_senders() {
        let a = key(2);
        let b = key(3);
        let state = funded(&[&a, &b]);
        let mut pool = Mempool::new();
        pool.insert(
            Transaction::transfer(a.address(), a.address(), 1, 0)
                .with_gas_price(1)
                .signed(&a),
            &state,
        )
        .unwrap();
        pool.insert(
            Transaction::transfer(b.address(), b.address(), 1, 0)
                .with_gas_price(5)
                .signed(&b),
            &state,
        )
        .unwrap();
        let picked = pool.select(&state, u64::MAX, 10);
        assert_eq!(picked[0].from, b.address(), "higher gas price goes first");
    }

    #[test]
    fn rejects_unsigned_and_stale() {
        let k = key(4);
        let mut state = funded(&[&k]);
        state.consume_nonce(k.address(), 0).unwrap();
        let mut pool = Mempool::new();
        let unsigned = Transaction::transfer(k.address(), k.address(), 1, 1);
        assert_eq!(
            pool.insert(unsigned, &state),
            Err(MempoolError::BadSignature)
        );
        let stale = Transaction::transfer(k.address(), k.address(), 1, 0).signed(&k);
        assert_eq!(
            pool.insert(stale, &state),
            Err(MempoolError::StaleNonce { current: 1, got: 0 })
        );
    }

    #[test]
    fn duplicate_needs_strictly_higher_price() {
        let k = key(5);
        let state = funded(&[&k]);
        let mut pool = Mempool::new();
        let tx1 = Transaction::transfer(k.address(), k.address(), 1, 0)
            .with_gas_price(2)
            .signed(&k);
        pool.insert(tx1, &state).unwrap();
        let same_price = Transaction::transfer(k.address(), k.address(), 2, 0)
            .with_gas_price(2)
            .signed(&k);
        assert_eq!(
            pool.insert(same_price, &state),
            Err(MempoolError::Duplicate)
        );
        let bumped = Transaction::transfer(k.address(), k.address(), 2, 0)
            .with_gas_price(3)
            .signed(&k);
        pool.insert(bumped.clone(), &state).unwrap();
        assert_eq!(pool.len(), 1);
        let picked = pool.select(&state, u64::MAX, 10);
        assert_eq!(picked[0].hash(), bumped.hash());
    }

    #[test]
    fn rejects_gas_below_intrinsic() {
        let k = key(6);
        let state = funded(&[&k]);
        let mut pool = Mempool::new();
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0)
            .with_gas_limit(100)
            .signed(&k);
        assert_eq!(pool.insert(tx, &state), Err(MempoolError::GasTooLow));
    }

    #[test]
    fn select_respects_gas_budget_and_count() {
        let k = key(7);
        let state = funded(&[&k]);
        let mut pool = Mempool::new();
        for n in 0..5 {
            pool.insert(
                Transaction::transfer(k.address(), k.address(), 1, n).signed(&k),
                &state,
            )
            .unwrap();
        }
        let by_gas = pool.select(&state, crate::gas::TX_BASE_GAS * 3, 10);
        assert_eq!(by_gas.len(), 3);
        let by_count = pool.select(&state, u64::MAX, 2);
        assert_eq!(by_count.len(), 2);
    }

    #[test]
    fn nonce_gaps_block_later_transactions() {
        let k = key(8);
        let state = funded(&[&k]);
        let mut pool = Mempool::new();
        // Only nonces 1 and 2 pooled; account is at 0.
        for n in [1u64, 2] {
            pool.insert(
                Transaction::transfer(k.address(), k.address(), 1, n).signed(&k),
                &state,
            )
            .unwrap();
        }
        assert!(pool.select(&state, u64::MAX, 10).is_empty());
    }

    #[test]
    fn prune_drops_included_transactions() {
        let k = key(9);
        let mut state = funded(&[&k]);
        let mut pool = Mempool::new();
        for n in 0..3 {
            pool.insert(
                Transaction::transfer(k.address(), k.address(), 1, n).signed(&k),
                &state,
            )
            .unwrap();
        }
        // Simulate inclusion of nonces 0 and 1.
        state.consume_nonce(k.address(), 0).unwrap();
        state.consume_nonce(k.address(), 1).unwrap();
        pool.prune(&state);
        assert_eq!(pool.len(), 1);
        let left = pool.select(&state, u64::MAX, 10);
        assert_eq!(left[0].nonce, 2);
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn contains_tracks_hashes() {
        let k = key(10);
        let state = funded(&[&k]);
        let mut pool = Mempool::new();
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0).signed(&k);
        let h = tx.hash();
        assert!(!pool.contains(&h));
        pool.insert(tx, &state).unwrap();
        assert!(pool.contains(&h));
    }
}
