//! Adaptive difficulty controllers.
//!
//! The paper's related work (§II-A2) cites Sethi et al. (CCNC 2024): using a
//! learned predictor to set PoW difficulty per consensus round "to enhance
//! blockchain performance, especially in the usage of blockchain-based FL
//! where the number of participants is flexible". Their RL agent is not
//! reproducible offline, so this module implements the controller family it
//! approximates (see DESIGN.md's substitution table):
//!
//! * [`RetargetRule::Homestead`] — Ethereum's fixed-step rule (the control
//!   arm; identical math to [`pow::next_difficulty`]);
//! * [`RetargetRule::MovingAverage`] — rescale difficulty by the ratio of the
//!   target block time to the recent mean interval (Bitcoin-style epochal
//!   retarget, applied continuously over a sliding window);
//! * [`RetargetRule::Pi`] — a proportional-integral controller on the
//!   relative interval error, the deterministic core of "predict the next
//!   difficulty from observed performance".
//!
//! The `chainperf` bench compares how quickly each rule restores the 13 s
//! cadence when miners join or leave mid-run (the flexible-participants
//! scenario federated learning induces).
//!
//! [`pow::next_difficulty`]: crate::pow::next_difficulty

use std::collections::VecDeque;

use crate::pow::{next_difficulty, MIN_DIFFICULTY, TARGET_BLOCK_TIME_NS};

/// Per-step difficulty change clamp for the adaptive rules: a single block may
/// move difficulty by at most this factor (up or down).
const MAX_STEP_FACTOR: f64 = 2.0;

/// How the next block's difficulty is derived from observed block intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetargetRule {
    /// Ethereum-Homestead fixed step of `parent/2048` toward the target.
    Homestead,
    /// Epochal retarget (Bitcoin-style): every `window` blocks, difficulty is
    /// rescaled by `target / mean(epoch intervals)`; constant in between.
    /// Applying the full correction once per epoch avoids the compounding
    /// overshoot a per-block window-mean correction suffers under the
    /// high-variance exponential interval noise.
    MovingAverage {
        /// Epoch length in blocks.
        window: usize,
    },
    /// Proportional-integral control on the relative error
    /// `(target - interval) / target`.
    Pi {
        /// Proportional gain.
        kp: f64,
        /// Integral gain.
        ki: f64,
    },
}

impl std::fmt::Display for RetargetRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetargetRule::Homestead => write!(f, "homestead"),
            RetargetRule::MovingAverage { window } => write!(f, "moving-avg(w={window})"),
            RetargetRule::Pi { kp, ki } => write!(f, "pi(kp={kp},ki={ki})"),
        }
    }
}

/// Stateful difficulty controller: feed it observed block intervals, read the
/// difficulty to mine the next block at.
///
/// # Examples
///
/// ```
/// use blockfed_chain::{DifficultyController, RetargetRule};
/// use blockfed_chain::pow::TARGET_BLOCK_TIME_NS;
///
/// let mut c = DifficultyController::new(RetargetRule::Pi { kp: 0.4, ki: 0.1 }, 1_000_000);
/// // Blocks arriving twice too fast push difficulty up.
/// c.observe(TARGET_BLOCK_TIME_NS / 2);
/// assert!(c.difficulty() > 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct DifficultyController {
    rule: RetargetRule,
    difficulty: u128,
    target_ns: u64,
    intervals: VecDeque<u64>,
    integral: f64,
}

impl DifficultyController {
    /// Creates a controller starting at `initial_difficulty`, aiming for the
    /// paper's ~13 s Ethereum cadence.
    ///
    /// # Panics
    ///
    /// Panics if `initial_difficulty` is zero, a `MovingAverage` window is
    /// zero, or `Pi` gains are not finite and non-negative.
    pub fn new(rule: RetargetRule, initial_difficulty: u128) -> Self {
        Self::with_target(rule, initial_difficulty, TARGET_BLOCK_TIME_NS)
    }

    /// Creates a controller with an explicit target block time.
    ///
    /// # Panics
    ///
    /// See [`DifficultyController::new`]; additionally panics if `target_ns`
    /// is zero.
    pub fn with_target(rule: RetargetRule, initial_difficulty: u128, target_ns: u64) -> Self {
        assert!(initial_difficulty > 0, "difficulty must be positive");
        assert!(target_ns > 0, "target block time must be positive");
        match rule {
            RetargetRule::MovingAverage { window } => {
                assert!(window > 0, "window must be positive");
            }
            RetargetRule::Pi { kp, ki } => {
                assert!(
                    kp.is_finite() && kp >= 0.0,
                    "kp must be finite and non-negative"
                );
                assert!(
                    ki.is_finite() && ki >= 0.0,
                    "ki must be finite and non-negative"
                );
            }
            RetargetRule::Homestead => {}
        }
        DifficultyController {
            rule,
            difficulty: initial_difficulty.max(MIN_DIFFICULTY),
            target_ns,
            intervals: VecDeque::new(),
            integral: 0.0,
        }
    }

    /// The rule in use.
    pub fn rule(&self) -> RetargetRule {
        self.rule
    }

    /// The difficulty the next block should be mined at.
    pub fn difficulty(&self) -> u128 {
        self.difficulty
    }

    /// The target block interval in nanoseconds.
    pub fn target_ns(&self) -> u64 {
        self.target_ns
    }

    /// Records one observed block interval and updates the difficulty.
    /// Returns the new difficulty.
    pub fn observe(&mut self, interval_ns: u64) -> u128 {
        let next = match self.rule {
            RetargetRule::Homestead => {
                // The Homestead step is defined against TARGET_BLOCK_TIME_NS;
                // generalize to this controller's target by scaling intervals.
                let scaled = if self.target_ns == TARGET_BLOCK_TIME_NS {
                    interval_ns
                } else {
                    ((u128::from(interval_ns) * u128::from(TARGET_BLOCK_TIME_NS)
                        / u128::from(self.target_ns)) as u64)
                        .max(1)
                };
                next_difficulty(self.difficulty, scaled)
            }
            RetargetRule::MovingAverage { window } => {
                self.intervals.push_back(interval_ns.max(1));
                if self.intervals.len() < window {
                    self.difficulty
                } else {
                    let mean = self.intervals.iter().map(|&i| i as f64).sum::<f64>()
                        / self.intervals.len() as f64;
                    self.intervals.clear();
                    let ratio = (self.target_ns as f64 / mean)
                        .clamp(1.0 / MAX_STEP_FACTOR, MAX_STEP_FACTOR);
                    scale_difficulty(self.difficulty, ratio)
                }
            }
            RetargetRule::Pi { kp, ki } => {
                let error = (self.target_ns as f64 - interval_ns as f64) / self.target_ns as f64;
                self.integral = (self.integral + error).clamp(-10.0, 10.0);
                let adjustment = (1.0 + kp * error + ki * self.integral)
                    .clamp(1.0 / MAX_STEP_FACTOR, MAX_STEP_FACTOR);
                scale_difficulty(self.difficulty, adjustment)
            }
        };
        self.difficulty = next.max(MIN_DIFFICULTY);
        self.difficulty
    }
}

impl RetargetRule {
    /// The difficulty for block `next_number`, derived **purely from chain
    /// history** — the consensus-rule form of this controller, usable inside
    /// [`crate::Blockchain::build_candidate`]. `intervals_newest_first` are
    /// the parent chain's block intervals in nanoseconds, newest first (may
    /// be shorter than a full window near genesis).
    ///
    /// Semantics per rule:
    ///
    /// * `Homestead` — fixed step on the newest interval (scaled to
    ///   `target_ns`), exactly [`next_difficulty`] at the default target;
    /// * `MovingAverage { window }` — epochal: at block numbers divisible by
    ///   `window`, rescale by `target / mean(last window intervals)` (2×
    ///   per-epoch clamp); otherwise inherit the parent difficulty;
    /// * `Pi { kp, ki }` — proportional term on the newest interval's
    ///   relative error plus an integral term summed over the last 8
    ///   intervals (clamped) — deterministic because the "state" is read
    ///   from history.
    pub fn from_history(
        &self,
        parent_difficulty: u128,
        next_number: u64,
        intervals_newest_first: &[u64],
        target_ns: u64,
    ) -> u128 {
        assert!(target_ns > 0, "target block time must be positive");
        let newest = match intervals_newest_first.first() {
            Some(&i) => i.max(1),
            None => return parent_difficulty.max(MIN_DIFFICULTY),
        };
        let next = match *self {
            RetargetRule::Homestead => {
                let scaled = if target_ns == TARGET_BLOCK_TIME_NS {
                    newest
                } else {
                    ((u128::from(newest) * u128::from(TARGET_BLOCK_TIME_NS) / u128::from(target_ns))
                        as u64)
                        .max(1)
                };
                next_difficulty(parent_difficulty, scaled)
            }
            RetargetRule::MovingAverage { window } => {
                let window = window.max(1);
                if !next_number.is_multiple_of(window as u64) {
                    parent_difficulty
                } else {
                    let slice = &intervals_newest_first[..window.min(intervals_newest_first.len())];
                    let mean =
                        slice.iter().map(|&i| i.max(1) as f64).sum::<f64>() / slice.len() as f64;
                    let ratio =
                        (target_ns as f64 / mean).clamp(1.0 / MAX_STEP_FACTOR, MAX_STEP_FACTOR);
                    scale_difficulty(parent_difficulty, ratio)
                }
            }
            RetargetRule::Pi { kp, ki } => {
                let err = |i: u64| (target_ns as f64 - i as f64) / target_ns as f64;
                let integral: f64 = intervals_newest_first
                    .iter()
                    .take(8)
                    .map(|&i| err(i.max(1)))
                    .sum::<f64>()
                    .clamp(-10.0, 10.0);
                let adjustment = (1.0 + kp * err(newest) + ki * integral)
                    .clamp(1.0 / MAX_STEP_FACTOR, MAX_STEP_FACTOR);
                scale_difficulty(parent_difficulty, adjustment)
            }
        };
        next.max(MIN_DIFFICULTY)
    }
}

/// Multiplies a difficulty by a positive factor with saturation.
fn scale_difficulty(difficulty: u128, factor: f64) -> u128 {
    debug_assert!(factor.is_finite() && factor > 0.0);
    let scaled = difficulty as f64 * factor;
    if scaled >= u128::MAX as f64 {
        u128::MAX
    } else {
        (scaled as u128).max(MIN_DIFFICULTY)
    }
}

/// Simulates `blocks` sequential mining races under a controller and a
/// (possibly time-varying) total hash rate, returning the observed intervals
/// in seconds. This is the harness used to compare retarget rules when the
/// miner population changes (`hashrate_at(block_index)`).
pub fn simulate_cadence<R: rand::Rng + ?Sized>(
    controller: &mut DifficultyController,
    mut hashrate_at: impl FnMut(usize) -> f64,
    blocks: usize,
    rng: &mut R,
) -> Vec<f64> {
    let mut intervals = Vec::with_capacity(blocks);
    for b in 0..blocks {
        let hashrate = hashrate_at(b);
        let delay = crate::pow::sample_mining_delay(controller.difficulty(), hashrate, rng);
        intervals.push(delay.as_secs_f64());
        controller.observe((delay.as_secs_f64() * 1e9) as u64);
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TARGET_S: f64 = TARGET_BLOCK_TIME_NS as f64 / 1e9;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn homestead_matches_pow_next_difficulty() {
        let mut c = DifficultyController::new(RetargetRule::Homestead, 1_000_000);
        let d = c.observe(TARGET_BLOCK_TIME_NS / 2);
        assert_eq!(d, next_difficulty(1_000_000, TARGET_BLOCK_TIME_NS / 2));
    }

    #[test]
    fn moving_average_scales_toward_target() {
        let mut c = DifficultyController::new(RetargetRule::MovingAverage { window: 4 }, 1_000_000);
        // Blocks arriving 2x too fast → difficulty should rise ~2x.
        for _ in 0..4 {
            c.observe(TARGET_BLOCK_TIME_NS / 2);
        }
        assert!(c.difficulty() > 1_500_000, "difficulty {}", c.difficulty());
        // Now 4x too slow → difficulty falls (clamped per-step).
        for _ in 0..8 {
            c.observe(TARGET_BLOCK_TIME_NS * 4);
        }
        assert!(c.difficulty() < 1_000_000, "difficulty {}", c.difficulty());
    }

    #[test]
    fn pi_reacts_to_persistent_error() {
        let mut c = DifficultyController::new(RetargetRule::Pi { kp: 0.4, ki: 0.1 }, 1_000_000);
        for _ in 0..10 {
            c.observe(TARGET_BLOCK_TIME_NS / 4);
        }
        assert!(c.difficulty() > 2_000_000, "difficulty {}", c.difficulty());
    }

    #[test]
    fn per_step_change_is_clamped() {
        let mut c = DifficultyController::new(RetargetRule::MovingAverage { window: 1 }, 1_000_000);
        // An absurdly fast block cannot more than double difficulty in one step.
        let d = c.observe(1);
        assert!(d <= 2_000_000);
        let mut c = DifficultyController::new(RetargetRule::Pi { kp: 100.0, ki: 0.0 }, 1_000_000);
        let d = c.observe(1);
        assert!(d <= 2_000_000);
    }

    #[test]
    fn difficulty_never_below_minimum() {
        for rule in [
            RetargetRule::Homestead,
            RetargetRule::MovingAverage { window: 2 },
            RetargetRule::Pi { kp: 0.5, ki: 0.1 },
        ] {
            let mut c = DifficultyController::new(rule, MIN_DIFFICULTY);
            for _ in 0..20 {
                c.observe(TARGET_BLOCK_TIME_NS * 100);
            }
            assert!(
                c.difficulty() >= MIN_DIFFICULTY,
                "{rule} went below minimum"
            );
        }
    }

    #[test]
    fn cadence_converges_under_constant_hashrate() {
        // Start 10x too easy; each adaptive rule must restore ~13 s cadence.
        let hashrate = 100_000.0;
        let easy = (hashrate * TARGET_S / 10.0) as u128;
        for rule in [
            RetargetRule::MovingAverage { window: 8 },
            RetargetRule::Pi { kp: 0.3, ki: 0.05 },
        ] {
            let mut c = DifficultyController::new(rule, easy);
            let mut rng = StdRng::seed_from_u64(11);
            let intervals = simulate_cadence(&mut c, |_| hashrate, 400, &mut rng);
            let tail = mean(&intervals[200..]);
            assert!(
                (tail - TARGET_S).abs() < TARGET_S * 0.35,
                "{rule}: tail cadence {tail}s vs target {TARGET_S}s"
            );
        }
    }

    #[test]
    fn adaptive_rules_recover_faster_than_homestead_after_miners_join() {
        // Hash rate quadruples at block 50 (participants join, à la Peng et
        // al.'s flexible-membership finding). Measure cadence error over the
        // 50 blocks after the shock.
        let base = 100_000.0;
        let shock = move |b: usize| if b < 50 { base } else { 4.0 * base };
        let initial = (base * TARGET_S) as u128;
        let mut errors = Vec::new();
        for rule in [
            RetargetRule::Homestead,
            RetargetRule::MovingAverage { window: 8 },
            RetargetRule::Pi { kp: 0.3, ki: 0.05 },
        ] {
            let mut c = DifficultyController::new(rule, initial);
            let mut rng = StdRng::seed_from_u64(17);
            let intervals = simulate_cadence(&mut c, shock, 100, &mut rng);
            // Mean cadence error after the shock: exponential noise averages
            // out, leaving the systematic miscalibration each rule failed to
            // correct.
            let err = (mean(&intervals[50..]) - TARGET_S).abs() / TARGET_S;
            errors.push((rule, err));
        }
        let homestead_err = errors[0].1;
        for (rule, err) in &errors[1..] {
            assert!(
                *err < homestead_err,
                "{rule} err {err} not better than homestead {homestead_err}"
            );
        }
    }

    #[test]
    fn accessors_and_display() {
        let c = DifficultyController::new(RetargetRule::MovingAverage { window: 3 }, 500);
        assert_eq!(c.difficulty(), 500);
        assert_eq!(c.target_ns(), TARGET_BLOCK_TIME_NS);
        assert_eq!(c.rule(), RetargetRule::MovingAverage { window: 3 });
        assert_eq!(RetargetRule::Homestead.to_string(), "homestead");
        assert!(RetargetRule::MovingAverage { window: 3 }
            .to_string()
            .contains("w=3"));
        assert!(RetargetRule::Pi { kp: 0.3, ki: 0.05 }
            .to_string()
            .contains("kp=0.3"));
    }

    #[test]
    fn custom_target_is_honoured() {
        let target = 2_000_000_000; // 2 s
        let mut c = DifficultyController::with_target(
            RetargetRule::MovingAverage { window: 4 },
            1_000_000,
            target,
        );
        for _ in 0..4 {
            c.observe(target); // exactly on target: no change beyond rounding
        }
        let d = c.difficulty();
        assert!((900_000..=1_100_000).contains(&d), "difficulty {d}");
    }

    #[test]
    fn from_history_homestead_matches_next_difficulty() {
        let d = 1_000_000u128;
        for interval in [TARGET_BLOCK_TIME_NS / 2, TARGET_BLOCK_TIME_NS * 2] {
            assert_eq!(
                RetargetRule::Homestead.from_history(d, 5, &[interval], TARGET_BLOCK_TIME_NS),
                next_difficulty(d, interval)
            );
        }
    }

    #[test]
    fn from_history_with_no_intervals_inherits_parent() {
        for rule in [
            RetargetRule::Homestead,
            RetargetRule::MovingAverage { window: 4 },
            RetargetRule::Pi { kp: 0.3, ki: 0.05 },
        ] {
            assert_eq!(
                rule.from_history(5_000, 1, &[], TARGET_BLOCK_TIME_NS),
                5_000
            );
        }
    }

    #[test]
    fn from_history_moving_average_is_epochal() {
        let rule = RetargetRule::MovingAverage { window: 4 };
        let fast = [TARGET_BLOCK_TIME_NS / 2; 4];
        // Off-boundary blocks inherit the parent difficulty.
        assert_eq!(
            rule.from_history(1_000_000, 5, &fast, TARGET_BLOCK_TIME_NS),
            1_000_000
        );
        // Boundary blocks rescale toward the target (2x fast → 2x difficulty).
        let at_boundary = rule.from_history(1_000_000, 8, &fast, TARGET_BLOCK_TIME_NS);
        assert!(at_boundary > 1_800_000, "got {at_boundary}");
    }

    #[test]
    fn from_history_pi_integrates_persistent_error() {
        let rule = RetargetRule::Pi { kp: 0.3, ki: 0.05 };
        let fast = [TARGET_BLOCK_TIME_NS / 4; 8];
        let one = rule.from_history(1_000_000, 3, &fast[..1], TARGET_BLOCK_TIME_NS);
        let many = rule.from_history(1_000_000, 9, &fast, TARGET_BLOCK_TIME_NS);
        assert!(
            many > one,
            "integral term must add pressure: {many} <= {one}"
        );
        assert!(many <= 2_000_000, "per-step clamp violated");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = DifficultyController::new(RetargetRule::MovingAverage { window: 0 }, 100);
    }

    #[test]
    #[should_panic(expected = "difficulty must be positive")]
    fn zero_difficulty_rejected() {
        let _ = DifficultyController::new(RetargetRule::Homestead, 0);
    }

    #[test]
    #[should_panic(expected = "kp must be finite")]
    fn bad_gain_rejected() {
        let _ = DifficultyController::new(
            RetargetRule::Pi {
                kp: f64::NAN,
                ki: 0.0,
            },
            100,
        );
    }
}
