//! Gas accounting, mirroring Ethereum's fee model.
//!
//! The paper configures its private Ethereum "without block size and transaction
//! size constraints … ensure that the transaction size exceeds the model's size"
//! (§IV-A1). We therefore meter model payload bytes at a flat rate and leave the
//! default block gas limit effectively unconstrained, while keeping the standard
//! intrinsic/calldata costs so chain-level economics stay Ethereum-shaped.

use crate::tx::Transaction;

/// Base cost of any transaction.
pub const TX_BASE_GAS: u64 = 21_000;
/// Cost per zero byte of calldata.
pub const DATA_ZERO_GAS: u64 = 4;
/// Cost per non-zero byte of calldata.
pub const DATA_NONZERO_GAS: u64 = 16;
/// Cost per byte of off-band model payload (the "transaction size exceeds the
/// model's size" adjustment).
pub const PAYLOAD_BYTE_GAS: u64 = 1;
/// Extra cost of deploying a contract.
pub const CREATE_GAS: u64 = 32_000;
/// Default per-block gas limit: high enough that a 21.2 MB model transaction
/// fits comfortably (the paper's "no constraints" configuration).
pub const DEFAULT_BLOCK_GAS_LIMIT: u64 = 200_000_000;

/// The intrinsic (pre-execution) gas cost of a transaction.
///
/// # Examples
///
/// ```
/// use blockfed_chain::gas::{intrinsic_gas, TX_BASE_GAS};
/// use blockfed_chain::tx::Transaction;
/// use blockfed_crypto::H160;
///
/// let tx = Transaction::transfer(H160::zero(), H160::zero(), 0, 0);
/// assert_eq!(intrinsic_gas(&tx), TX_BASE_GAS);
/// ```
pub fn intrinsic_gas(tx: &Transaction) -> u64 {
    let mut gas = TX_BASE_GAS;
    for &b in &tx.data {
        gas += if b == 0 {
            DATA_ZERO_GAS
        } else {
            DATA_NONZERO_GAS
        };
    }
    gas += tx.payload_bytes.saturating_mul(PAYLOAD_BYTE_GAS);
    if tx.to.is_none() {
        gas += CREATE_GAS;
    }
    gas
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_crypto::H160;

    #[test]
    fn plain_transfer_costs_base() {
        let tx = Transaction::transfer(H160::zero(), H160::zero(), 5, 0);
        assert_eq!(intrinsic_gas(&tx), TX_BASE_GAS);
    }

    #[test]
    fn calldata_charges_by_byte_kind() {
        let mut tx = Transaction::transfer(H160::zero(), H160::zero(), 0, 0);
        tx.data = vec![0, 0, 1, 2];
        assert_eq!(
            intrinsic_gas(&tx),
            TX_BASE_GAS + 2 * DATA_ZERO_GAS + 2 * DATA_NONZERO_GAS
        );
    }

    #[test]
    fn model_payload_charges_flat_rate() {
        let mut tx = Transaction::transfer(H160::zero(), H160::zero(), 0, 0);
        tx.payload_bytes = 253_952; // SimpleNN's 248 KB
        assert_eq!(intrinsic_gas(&tx), TX_BASE_GAS + 253_952);
    }

    #[test]
    fn creation_costs_extra() {
        let mut tx = Transaction::transfer(H160::zero(), H160::zero(), 0, 0);
        tx.to = None;
        assert_eq!(intrinsic_gas(&tx), TX_BASE_GAS + CREATE_GAS);
    }

    #[test]
    fn effnet_payload_fits_default_block_limit() {
        let mut tx = Transaction::transfer(H160::zero(), H160::zero(), 0, 0);
        tx.payload_bytes = 22_228_000; // 21.2 MB
        assert!(intrinsic_gas(&tx) < DEFAULT_BLOCK_GAS_LIMIT);
    }
}
