//! Blocks and headers.

use blockfed_crypto::sha256::Sha256;
use blockfed_crypto::{merkle_root, H160, H256};
use serde::{Deserialize, Serialize};

use crate::tx::Transaction;

/// A block header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Hash of the parent block.
    pub parent: H256,
    /// Height (genesis is 0).
    pub number: u64,
    /// Timestamp in simulation nanoseconds.
    pub timestamp_ns: u64,
    /// Address of the miner that sealed the block.
    pub miner: H160,
    /// Proof-of-work difficulty.
    pub difficulty: u128,
    /// Proof-of-work nonce.
    pub nonce: u64,
    /// Merkle root over transaction hashes.
    pub tx_root: H256,
    /// State root after executing this block.
    pub state_root: H256,
    /// Gas consumed by the block's transactions.
    pub gas_used: u64,
    /// The block gas limit.
    pub gas_limit: u64,
}

impl Header {
    /// The header hash (the proof-of-work pre-image includes the nonce).
    pub fn hash(&self) -> H256 {
        let mut h = Sha256::new();
        h.update(self.parent.as_bytes());
        h.update(&self.number.to_le_bytes());
        h.update(&self.timestamp_ns.to_le_bytes());
        h.update(self.miner.as_bytes());
        h.update(&self.difficulty.to_le_bytes());
        h.update(&self.nonce.to_le_bytes());
        h.update(self.tx_root.as_bytes());
        h.update(self.state_root.as_bytes());
        h.update(&self.gas_used.to_le_bytes());
        h.update(&self.gas_limit.to_le_bytes());
        h.finalize()
    }
}

/// A full block: header plus transaction list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The sealed header.
    pub header: Header,
    /// Included transactions, in execution order.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// The block hash (the header hash).
    pub fn hash(&self) -> H256 {
        self.header.hash()
    }

    /// Height shorthand.
    pub fn number(&self) -> u64 {
        self.header.number
    }

    /// Computes the merkle root over the transaction hashes.
    pub fn compute_tx_root(transactions: &[Transaction]) -> H256 {
        let leaves: Vec<H256> = transactions.iter().map(Transaction::hash).collect();
        merkle_root(&leaves)
    }

    /// Whether the header's `tx_root` matches the transaction list.
    pub fn tx_root_valid(&self) -> bool {
        self.header.tx_root == Self::compute_tx_root(&self.transactions)
    }

    /// Total declared payload bytes (model artifacts) in the block.
    pub fn total_payload_bytes(&self) -> u64 {
        self.transactions.iter().map(|t| t.payload_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            parent: H256::zero(),
            number: 1,
            timestamp_ns: 13_000,
            miner: H160::zero(),
            difficulty: 1000,
            nonce: 42,
            tx_root: H256::zero(),
            state_root: H256::zero(),
            gas_used: 0,
            gas_limit: 1_000_000,
        }
    }

    #[test]
    fn hash_covers_every_field() {
        let base = header();
        let mut variants = Vec::new();
        let mut h = base.clone();
        h.number = 2;
        variants.push(h.hash());
        let mut h = base.clone();
        h.timestamp_ns = 14_000;
        variants.push(h.hash());
        let mut h = base.clone();
        h.difficulty = 1001;
        variants.push(h.hash());
        let mut h = base.clone();
        h.nonce = 43;
        variants.push(h.hash());
        let mut h = base.clone();
        h.gas_used = 5;
        variants.push(h.hash());
        let mut h = base.clone();
        h.tx_root = blockfed_crypto::sha256::sha256(b"txs");
        variants.push(h.hash());
        for v in &variants {
            assert_ne!(*v, base.hash());
        }
        // All variants distinct from each other too.
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                assert_ne!(variants[i], variants[j]);
            }
        }
    }

    #[test]
    fn tx_root_validation() {
        let tx = Transaction::transfer(H160::zero(), H160::zero(), 1, 0);
        let txs = vec![tx];
        let mut h = header();
        h.tx_root = Block::compute_tx_root(&txs);
        let block = Block {
            header: h,
            transactions: txs,
        };
        assert!(block.tx_root_valid());
        assert_eq!(block.number(), 1);

        let mut tampered = block.clone();
        tampered.transactions[0].value = 999;
        assert!(!tampered.tx_root_valid());
    }

    #[test]
    fn empty_block_tx_root_is_zero() {
        assert_eq!(Block::compute_tx_root(&[]), H256::zero());
    }

    #[test]
    fn payload_bytes_sum() {
        let a = Transaction::transfer(H160::zero(), H160::zero(), 0, 0).with_payload_bytes(100);
        let b = Transaction::transfer(H160::zero(), H160::zero(), 0, 1).with_payload_bytes(250);
        let mut h = header();
        h.tx_root = Block::compute_tx_root(&[a.clone(), b.clone()]);
        let block = Block {
            header: h,
            transactions: vec![a, b],
        };
        assert_eq!(block.total_payload_bytes(), 350);
    }
}
