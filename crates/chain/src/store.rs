//! The chain store: a run-scoped handle that memoizes validated block
//! executions and Schnorr signature verdicts for every chain sharing it.
//!
//! In a simulated network every peer re-executes the identical block on the
//! identical parent state and re-verifies the identical gossiped
//! transaction — O(peers) copies of the same deterministic work. The memos
//! that collapse this used to be process-wide statics, which meant a matrix
//! of hundreds of cells (or a long-lived service embedding thousands of
//! runs) leaked every validated block and signature verdict it ever saw.
//! A [`ChainStore`] scopes the same sharing to an explicit handle instead:
//!
//! * one handle is shared by every chain of one run (the orchestrator clones
//!   it into each peer's [`crate::Blockchain`] and [`crate::Mempool`]);
//! * dropping the last handle frees everything — nothing outlives the run;
//! * entries are **epoch-scoped**: [`ChainStore::begin_epoch`] advances the
//!   store's epoch and evicts entries not touched within
//!   [`StoreLimits::keep_epochs`] epochs, so sequential runs that share a
//!   handle (fork replay, memcheck) reuse the previous run's work without
//!   accumulating unboundedly;
//! * hard caps ([`StoreLimits::max_exec_entries`],
//!   [`StoreLimits::max_sig_entries`]) bound growth *within* an epoch — on
//!   overflow the map is flushed wholesale, a deterministic policy (the memo
//!   is a pure cache: a miss only costs re-execution).
//!
//! Soundness is inherited from the keys. An execution entry is keyed by
//! `(block hash, runtime execution fingerprint)`: the block hash commits to
//! the parent (hence, inductively, the parent state), the transaction root,
//! and the resulting `state_root`, so one chain's validated result is every
//! chain's result *under the same execution semantics*, and the runtime's
//! [`crate::ContractRuntime::execution_fingerprint`] keeps semantically
//! different runtimes from ever sharing entries. A signature entry is the
//! transaction hash, which covers the signature bytes; only *successful*
//! verdicts are stored, so tampering (which changes the hash) always
//! re-verifies from scratch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use blockfed_crypto::H256;

use crate::receipt::Receipt;
use crate::state::{State, StateDelta};

/// Capacity and retention policy of a [`ChainStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLimits {
    /// Hard cap on memoized block executions; exceeding it within one epoch
    /// flushes the execution memo (deterministically — the memo is a cache).
    pub max_exec_entries: usize,
    /// Hard cap on memoized signature verdicts; same flush-on-overflow
    /// policy.
    pub max_sig_entries: usize,
    /// How many epochs an untouched entry survives. With the default of 1,
    /// entries touched in epoch `e` are evicted at the start of epoch
    /// `e + 2` — one full epoch of grace, so a replay immediately following
    /// a run still hits its memos.
    pub keep_epochs: u64,
}

impl Default for StoreLimits {
    fn default() -> Self {
        StoreLimits {
            max_exec_entries: 8_192,
            max_sig_entries: 65_536,
            keep_epochs: 1,
        }
    }
}

/// A snapshot of a store's deterministic meters. Within one single-threaded
/// run the counts are exact and reproducible; fold deltas (see
/// [`StoreCounters::since`]) rather than absolutes when a store is shared
/// across sequential runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Block executions served from the memo.
    pub exec_hits: u64,
    /// Block executions that had to run (and were then memoized).
    pub exec_misses: u64,
    /// Signature verdicts served from the memo.
    pub sig_hits: u64,
    /// Signatures that had to be verified (successes are then memoized).
    pub sig_misses: u64,
    /// Execution entries dropped by epoch eviction or cap overflow.
    pub exec_evicted: u64,
    /// Signature entries dropped by epoch eviction or cap overflow.
    pub sig_evicted: u64,
}

impl StoreCounters {
    /// The per-field difference `self - base` (saturating): the meters one
    /// run contributed when `base` was snapshotted at its start.
    pub fn since(&self, base: &StoreCounters) -> StoreCounters {
        StoreCounters {
            exec_hits: self.exec_hits.saturating_sub(base.exec_hits),
            exec_misses: self.exec_misses.saturating_sub(base.exec_misses),
            sig_hits: self.sig_hits.saturating_sub(base.sig_hits),
            sig_misses: self.sig_misses.saturating_sub(base.sig_misses),
            exec_evicted: self.exec_evicted.saturating_sub(base.exec_evicted),
            sig_evicted: self.sig_evicted.saturating_sub(base.sig_evicted),
        }
    }
}

/// A memoized block execution: the post-state, the receipts, and the diff
/// against the parent state (so memo hits never re-diff).
pub(crate) type ExecEntry = (Arc<State>, Arc<Vec<Receipt>>, Arc<StateDelta>);

struct ExecSlot {
    entry: ExecEntry,
    /// Epoch of the last touch (insert or hit); re-stamped through the read
    /// lock on every hit.
    epoch: AtomicU64,
}

struct StoreInner {
    limits: StoreLimits,
    epoch: AtomicU64,
    exec: RwLock<HashMap<(H256, u64), ExecSlot>>,
    sig: RwLock<HashMap<H256, AtomicU64>>,
    exec_hits: AtomicU64,
    exec_misses: AtomicU64,
    sig_hits: AtomicU64,
    sig_misses: AtomicU64,
    exec_evicted: AtomicU64,
    sig_evicted: AtomicU64,
}

impl StoreInner {
    fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
        lock.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
        lock.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// An epoch-scoped, bounded store of validated block executions and
/// signature verdicts, shared (cheap [`Clone`] of an `Arc`) by every chain
/// of one run and dropped with it.
///
/// # Examples
///
/// ```
/// use blockfed_chain::ChainStore;
///
/// let store = ChainStore::new();
/// assert_eq!(store.exec_entries(), 0);
/// store.begin_epoch(); // a run starts: epoch 1
/// assert_eq!(store.epoch(), 1);
/// ```
#[derive(Clone, Default)]
pub struct ChainStore {
    inner: Arc<StoreInner>,
}

impl Default for StoreInner {
    fn default() -> Self {
        StoreInner {
            limits: StoreLimits::default(),
            epoch: AtomicU64::new(0),
            exec: RwLock::new(HashMap::new()),
            sig: RwLock::new(HashMap::new()),
            exec_hits: AtomicU64::new(0),
            exec_misses: AtomicU64::new(0),
            sig_hits: AtomicU64::new(0),
            sig_misses: AtomicU64::new(0),
            exec_evicted: AtomicU64::new(0),
            sig_evicted: AtomicU64::new(0),
        }
    }
}

impl ChainStore {
    /// A fresh, empty store with [`StoreLimits::default`].
    pub fn new() -> Self {
        ChainStore::default()
    }

    /// A fresh store with explicit limits.
    pub fn with_limits(limits: StoreLimits) -> Self {
        ChainStore {
            inner: Arc::new(StoreInner {
                limits,
                ..StoreInner::default()
            }),
        }
    }

    /// The store's limits.
    pub fn limits(&self) -> StoreLimits {
        self.inner.limits
    }

    /// The current epoch (0 until the first [`ChainStore::begin_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Relaxed)
    }

    /// Advances the epoch and evicts every entry whose last touch is older
    /// than [`StoreLimits::keep_epochs`] epochs. A run calls this once at
    /// start, so sequential runs sharing a handle keep exactly the previous
    /// run's entries warm while everything older ages out.
    pub fn begin_epoch(&self) {
        let epoch = self.inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let keep = self.inner.limits.keep_epochs;
        let cutoff = epoch.saturating_sub(keep);
        if cutoff == 0 {
            return;
        }
        let mut evicted = 0u64;
        {
            let mut exec = StoreInner::write(&self.inner.exec);
            let before = exec.len();
            exec.retain(|_, slot| slot.epoch.load(Ordering::Relaxed) >= cutoff);
            evicted += (before - exec.len()) as u64;
        }
        self.inner
            .exec_evicted
            .fetch_add(evicted, Ordering::Relaxed);
        let mut sig_evicted = 0u64;
        {
            let mut sig = StoreInner::write(&self.inner.sig);
            let before = sig.len();
            sig.retain(|_, stamp| stamp.load(Ordering::Relaxed) >= cutoff);
            sig_evicted += (before - sig.len()) as u64;
        }
        self.inner
            .sig_evicted
            .fetch_add(sig_evicted, Ordering::Relaxed);
    }

    /// Number of memoized block executions.
    pub fn exec_entries(&self) -> usize {
        StoreInner::read(&self.inner.exec).len()
    }

    /// Number of memoized signature verdicts.
    pub fn sig_entries(&self) -> usize {
        StoreInner::read(&self.inner.sig).len()
    }

    /// A snapshot of the store's meters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            exec_hits: self.inner.exec_hits.load(Ordering::Relaxed),
            exec_misses: self.inner.exec_misses.load(Ordering::Relaxed),
            sig_hits: self.inner.sig_hits.load(Ordering::Relaxed),
            sig_misses: self.inner.sig_misses.load(Ordering::Relaxed),
            exec_evicted: self.inner.exec_evicted.load(Ordering::Relaxed),
            sig_evicted: self.inner.sig_evicted.load(Ordering::Relaxed),
        }
    }

    /// A signature-verdict cache handle backed by this store, for
    /// [`crate::Mempool::with_sig_cache`] and the block executor.
    pub fn sig_cache(&self) -> SigCache {
        SigCache {
            inner: Some(Arc::clone(&self.inner)),
        }
    }

    /// Looks up a memoized execution, counting a hit or miss and re-stamping
    /// the entry's epoch on hit.
    pub(crate) fn lookup_exec(&self, key: &(H256, u64)) -> Option<ExecEntry> {
        let exec = StoreInner::read(&self.inner.exec);
        match exec.get(key) {
            Some(slot) => {
                slot.epoch
                    .store(self.inner.epoch.load(Ordering::Relaxed), Ordering::Relaxed);
                self.inner.exec_hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.entry.clone())
            }
            None => {
                self.inner.exec_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a validated execution, flushing the map first if it is at
    /// capacity.
    pub(crate) fn insert_exec(&self, key: (H256, u64), entry: ExecEntry) {
        let mut exec = StoreInner::write(&self.inner.exec);
        if exec.len() >= self.inner.limits.max_exec_entries {
            self.inner
                .exec_evicted
                .fetch_add(exec.len() as u64, Ordering::Relaxed);
            exec.clear();
        }
        let epoch = self.inner.epoch.load(Ordering::Relaxed);
        exec.insert(
            key,
            ExecSlot {
                entry,
                epoch: AtomicU64::new(epoch),
            },
        );
    }
}

impl std::fmt::Debug for ChainStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainStore")
            .field("epoch", &self.epoch())
            .field("exec_entries", &self.exec_entries())
            .field("sig_entries", &self.sig_entries())
            .finish()
    }
}

/// A handle to a store's signature-verdict memo — or a disabled no-op cache
/// ([`SigCache::disabled`], the [`Default`]) under which every verification
/// runs from scratch.
///
/// Only *successful* verdicts are recorded, keyed by the transaction hash
/// (which covers the signature bytes), so a cached `Ok` is as strong as a
/// fresh verification and failures always re-verify.
#[derive(Clone, Default)]
pub struct SigCache {
    inner: Option<Arc<StoreInner>>,
}

impl std::fmt::Debug for SigCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigCache")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl SigCache {
    /// A cache that never hits and never records: plain verification.
    pub fn disabled() -> Self {
        SigCache::default()
    }

    /// Whether this handle is backed by a store.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `hash` has a recorded successful verdict; counts a hit or a
    /// miss and re-stamps the entry's epoch on hit. Always `false` when
    /// disabled (without counting).
    pub(crate) fn check(&self, hash: &H256) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let sig = StoreInner::read(&inner.sig);
        match sig.get(hash) {
            Some(stamp) => {
                stamp.store(inner.epoch.load(Ordering::Relaxed), Ordering::Relaxed);
                inner.sig_hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => {
                inner.sig_misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Records a successful verdict (no-op when disabled), flushing the map
    /// first if it is at capacity.
    pub(crate) fn record(&self, hash: H256) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut sig = StoreInner::write(&inner.sig);
        if sig.len() >= inner.limits.max_sig_entries {
            inner
                .sig_evicted
                .fetch_add(sig.len() as u64, Ordering::Relaxed);
            sig.clear();
        }
        let epoch = inner.epoch.load(Ordering::Relaxed);
        sig.insert(hash, AtomicU64::new(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u8) -> H256 {
        blockfed_crypto::sha256::sha256(&[n])
    }

    fn entry() -> ExecEntry {
        (
            Arc::new(State::new()),
            Arc::new(Vec::new()),
            Arc::new(StateDelta::default()),
        )
    }

    #[test]
    fn epoch_eviction_keeps_one_epoch_of_grace() {
        let store = ChainStore::new();
        store.begin_epoch(); // epoch 1
        store.insert_exec((h(1), 0), entry());
        let cache = store.sig_cache();
        cache.record(h(2));
        assert_eq!(store.exec_entries(), 1);
        assert_eq!(store.sig_entries(), 1);

        // Epoch 2: entries from epoch 1 survive (keep_epochs = 1).
        store.begin_epoch();
        assert_eq!(store.exec_entries(), 1);
        assert_eq!(store.sig_entries(), 1);

        // Epoch 3 without any touch: epoch-1 stamps age out.
        store.begin_epoch();
        assert_eq!(store.exec_entries(), 0);
        assert_eq!(store.sig_entries(), 0);
        let c = store.counters();
        assert_eq!(c.exec_evicted, 1);
        assert_eq!(c.sig_evicted, 1);
    }

    #[test]
    fn hits_restamp_and_keep_entries_alive() {
        let store = ChainStore::new();
        store.begin_epoch();
        store.insert_exec((h(1), 0), entry());
        for _ in 0..5 {
            store.begin_epoch();
            // Touch it every epoch: never evicted.
            assert!(store.lookup_exec(&(h(1), 0)).is_some());
        }
        assert_eq!(store.exec_entries(), 1);
        let c = store.counters();
        assert_eq!(c.exec_hits, 5);
        assert_eq!(c.exec_evicted, 0);
    }

    #[test]
    fn caps_flush_wholesale() {
        let store = ChainStore::with_limits(StoreLimits {
            max_exec_entries: 2,
            max_sig_entries: 2,
            keep_epochs: 1,
        });
        store.insert_exec((h(1), 0), entry());
        store.insert_exec((h(2), 0), entry());
        store.insert_exec((h(3), 0), entry()); // over cap: flush, then insert
        assert_eq!(store.exec_entries(), 1);
        assert_eq!(store.counters().exec_evicted, 2);

        let cache = store.sig_cache();
        cache.record(h(1));
        cache.record(h(2));
        cache.record(h(3));
        assert_eq!(store.sig_entries(), 1);
        assert_eq!(store.counters().sig_evicted, 2);
    }

    #[test]
    fn disabled_sig_cache_never_hits_or_counts() {
        let cache = SigCache::disabled();
        assert!(!cache.is_enabled());
        assert!(!cache.check(&h(1)));
        cache.record(h(1));
        assert!(!cache.check(&h(1)));
    }

    #[test]
    fn counters_delta_via_since() {
        let store = ChainStore::new();
        store.insert_exec((h(1), 0), entry());
        let _ = store.lookup_exec(&(h(1), 0));
        let base = store.counters();
        let _ = store.lookup_exec(&(h(1), 0));
        let _ = store.lookup_exec(&(h(9), 0));
        let d = store.counters().since(&base);
        assert_eq!(d.exec_hits, 1);
        assert_eq!(d.exec_misses, 1);
    }

    #[test]
    fn handles_share_one_store() {
        let a = ChainStore::new();
        let b = a.clone();
        a.insert_exec((h(7), 0), entry());
        assert_eq!(b.exec_entries(), 1);
        drop(a);
        assert_eq!(b.exec_entries(), 1, "surviving handle keeps the data");
    }
}
