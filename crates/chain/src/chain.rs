//! The blockchain: block storage, validation, execution, total-difficulty fork
//! choice, and candidate-block building for miners.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use blockfed_crypto::H256;

use crate::block::{Block, Header};
use crate::executor::{execute_block_txs, BlockEnv};
use crate::genesis::GenesisSpec;
use crate::pow;
use crate::receipt::Receipt;
use crate::runtime::ContractRuntime;
use crate::state::State;
use crate::tx::Transaction;

/// How strictly imported seals are checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealPolicy {
    /// Require `hash(header) ≤ target` (real proof-of-work).
    Full,
    /// Trust the seal; the mining race was decided by the discrete-event
    /// simulation upstream (statistically equivalent, documented in DESIGN.md).
    Simulated,
}

/// Why a block was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The parent block is unknown (orphan).
    UnknownParent(H256),
    /// Height is not parent height + 1.
    BadNumber {
        /// Expected height.
        expected: u64,
        /// Height in the header.
        got: u64,
    },
    /// Timestamp is not after the parent's.
    BadTimestamp,
    /// The proof-of-work seal does not meet the difficulty target.
    BadSeal,
    /// The header's transaction root does not match the body.
    BadTxRoot,
    /// Re-execution produced a different state root.
    BadStateRoot {
        /// Root the header declared.
        declared: H256,
        /// Root re-execution produced.
        computed: H256,
    },
    /// Re-execution produced different gas usage.
    BadGasUsed {
        /// Gas the header declared.
        declared: u64,
        /// Gas re-execution measured.
        computed: u64,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::UnknownParent(h) => write!(f, "unknown parent {h}"),
            ImportError::BadNumber { expected, got } => {
                write!(f, "bad height: expected {expected}, got {got}")
            }
            ImportError::BadTimestamp => write!(f, "timestamp not after parent"),
            ImportError::BadSeal => write!(f, "proof-of-work seal invalid"),
            ImportError::BadTxRoot => write!(f, "transaction root mismatch"),
            ImportError::BadStateRoot { .. } => write!(f, "state root mismatch"),
            ImportError::BadGasUsed { declared, computed } => {
                write!(
                    f,
                    "gas used mismatch: declared {declared}, computed {computed}"
                )
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// What importing a block did to the canonical chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportOutcome {
    /// The block extended the canonical head.
    Extended,
    /// The block was valid but landed on a side chain.
    SideChain,
    /// The block triggered a reorganization to a heavier fork.
    Reorged {
        /// The head before the reorg.
        old_head: H256,
    },
    /// The block was already known; nothing changed.
    AlreadyKnown,
}

/// A validated block's execution result, shared process-wide.
type ExecutedBlock = (Arc<State>, Arc<Vec<Receipt>>);

/// Process-wide memo of successfully validated block executions, keyed by
/// `(block hash, runtime execution fingerprint)`.
///
/// In a simulated network every peer re-executes the identical block on the
/// identical parent state — O(peers) copies of the same deterministic work,
/// dominated by state cloning and whole-state root hashing. The block hash
/// commits to the parent (hence, inductively, the parent state), the
/// transaction root, and the resulting `state_root`, so one chain's
/// validated result is every chain's result *under the same execution
/// semantics*: a colliding hash with a different outcome would have to
/// declare a different `state_root`, which changes the hash. The runtime's
/// [`ContractRuntime::execution_fingerprint`] closes the remaining hole —
/// two chains driven by semantically different runtimes (e.g. `NullRuntime`
/// vs a native-dispatching VM) never share entries, so an import that
/// *should* fail `BadStateRoot` under its own runtime still does. Only
/// *successful* imports are memoized — tampered blocks hash differently and
/// always re-execute (and fail) from scratch. Entries live for the process:
/// a deliberate trade (see ROADMAP) — within one run the `Arc`-shared
/// states use ~peers× *less* memory than the per-chain copies they replace.
fn executed_memo() -> &'static RwLock<HashMap<(H256, u64), ExecutedBlock>> {
    static MEMO: OnceLock<RwLock<HashMap<(H256, u64), ExecutedBlock>>> = OnceLock::new();
    MEMO.get_or_init(|| RwLock::new(HashMap::new()))
}

/// An in-memory blockchain with full per-block state tracking. Per-block
/// states and receipts are `Arc`-shared across every chain that imported the
/// block, so N simulated peers hold one copy of each executed state instead
/// of N.
pub struct Blockchain {
    blocks: HashMap<H256, Block>,
    states: HashMap<H256, Arc<State>>,
    receipts: HashMap<H256, Arc<Vec<Receipt>>>,
    total_difficulty: HashMap<H256, u128>,
    head: H256,
    genesis: H256,
    seal_policy: SealPolicy,
    retarget_rule: crate::retarget::RetargetRule,
}

impl Blockchain {
    /// Creates a chain from a genesis spec with full seal checking.
    pub fn new(spec: &GenesisSpec) -> Self {
        Self::with_seal_policy(spec, SealPolicy::Full)
    }

    /// Creates a chain with an explicit seal policy.
    pub fn with_seal_policy(spec: &GenesisSpec, seal_policy: SealPolicy) -> Self {
        let (genesis_block, genesis_state) = spec.build();
        let genesis_hash = genesis_block.hash();
        let mut blocks = HashMap::new();
        let mut states = HashMap::new();
        let mut total_difficulty = HashMap::new();
        blocks.insert(genesis_hash, genesis_block);
        states.insert(genesis_hash, Arc::new(genesis_state));
        total_difficulty.insert(genesis_hash, spec.difficulty);
        Blockchain {
            blocks,
            states,
            receipts: HashMap::new(),
            total_difficulty,
            head: genesis_hash,
            genesis: genesis_hash,
            seal_policy,
            retarget_rule: crate::retarget::RetargetRule::Homestead,
        }
    }

    /// The difficulty-retarget rule used by [`Blockchain::build_candidate`]
    /// (Homestead by default).
    pub fn retarget_rule(&self) -> crate::retarget::RetargetRule {
        self.retarget_rule
    }

    /// Switches the difficulty-retarget rule used when building candidates
    /// (builder style). Existing blocks are untouched: the rule is a pure
    /// function of chain history, so miners can change policy at any height.
    #[must_use]
    pub fn with_retarget_rule(mut self, rule: crate::retarget::RetargetRule) -> Self {
        self.retarget_rule = rule;
        self
    }

    /// Block intervals (nanoseconds, newest first) of the chain ending at
    /// `from`, up to `max` entries, stopping at genesis.
    pub fn recent_intervals(&self, from: &H256, max: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(max);
        let mut cursor = *from;
        while out.len() < max {
            let Some(block) = self.blocks.get(&cursor) else {
                break;
            };
            if cursor == self.genesis {
                break;
            }
            let parent = &self.blocks[&block.header.parent];
            out.push(
                block
                    .header
                    .timestamp_ns
                    .saturating_sub(parent.header.timestamp_ns),
            );
            cursor = block.header.parent;
        }
        out
    }

    /// The canonical head hash.
    pub fn head(&self) -> H256 {
        self.head
    }

    /// The canonical head block.
    pub fn head_block(&self) -> &Block {
        &self.blocks[&self.head]
    }

    /// The genesis hash.
    pub fn genesis(&self) -> H256 {
        self.genesis
    }

    /// Canonical height.
    pub fn height(&self) -> u64 {
        self.head_block().number()
    }

    /// The state at the canonical head.
    pub fn state(&self) -> &State {
        self.states[&self.head].as_ref()
    }

    /// The state after a given block, if known.
    pub fn state_at(&self, hash: &H256) -> Option<&State> {
        self.states.get(hash).map(Arc::as_ref)
    }

    /// A block by hash.
    pub fn block(&self, hash: &H256) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// Whether a block is known.
    pub fn contains(&self, hash: &H256) -> bool {
        self.blocks.contains_key(hash)
    }

    /// Receipts of a block's transactions, if known.
    pub fn receipts(&self, hash: &H256) -> Option<&[Receipt]> {
        self.receipts.get(hash).map(|r| r.as_slice())
    }

    /// Total difficulty of a block.
    pub fn total_difficulty_of(&self, hash: &H256) -> Option<u128> {
        self.total_difficulty.get(hash).copied()
    }

    /// Number of blocks stored (including side chains and genesis).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Hashes of the canonical chain from genesis to head.
    pub fn canonical_chain(&self) -> Vec<H256> {
        let mut out = Vec::with_capacity(self.height() as usize + 1);
        let mut cursor = self.head;
        loop {
            out.push(cursor);
            if cursor == self.genesis {
                break;
            }
            cursor = self.blocks[&cursor].header.parent;
        }
        out.reverse();
        out
    }

    /// The canonical block at a height, if within range.
    pub fn block_by_number(&self, number: u64) -> Option<&Block> {
        let chain = self.canonical_chain();
        chain.get(number as usize).map(|h| &self.blocks[h])
    }

    /// Validates and imports a block, executing its transactions.
    ///
    /// # Errors
    ///
    /// Returns [`ImportError`] describing the first validation failure; the
    /// chain is unchanged on error.
    pub fn import(
        &mut self,
        block: Block,
        runtime: &mut dyn ContractRuntime,
    ) -> Result<ImportOutcome, ImportError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Ok(ImportOutcome::AlreadyKnown);
        }
        let parent = self
            .blocks
            .get(&block.header.parent)
            .ok_or(ImportError::UnknownParent(block.header.parent))?;
        if block.header.number != parent.header.number + 1 {
            return Err(ImportError::BadNumber {
                expected: parent.header.number + 1,
                got: block.header.number,
            });
        }
        if block.header.timestamp_ns <= parent.header.timestamp_ns {
            return Err(ImportError::BadTimestamp);
        }
        if self.seal_policy == SealPolicy::Full && !pow::seal_valid(&block.header) {
            return Err(ImportError::BadSeal);
        }
        if !block.tx_root_valid() {
            return Err(ImportError::BadTxRoot);
        }

        // Re-execute on the parent state — unless another chain in this
        // process already validated this exact block (see [`executed_memo`]):
        // a hit skips both the execution and the whole-state root hash.
        let memo_key = (hash, runtime.execution_fingerprint());
        let cached = executed_memo()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&memo_key)
            .cloned();
        let (exec_state, exec_receipts) = match cached {
            Some(entry) => entry,
            None => {
                let parent_state = self.states[&block.header.parent].as_ref();
                let env = BlockEnv {
                    number: block.header.number,
                    timestamp_ns: block.header.timestamp_ns,
                    miner: block.header.miner,
                    gas_limit: block.header.gas_limit,
                };
                let result = execute_block_txs(parent_state, &block.transactions, &env, runtime);
                let computed_root = result.state.root();
                if computed_root != block.header.state_root {
                    return Err(ImportError::BadStateRoot {
                        declared: block.header.state_root,
                        computed: computed_root,
                    });
                }
                if result.gas_used != block.header.gas_used {
                    return Err(ImportError::BadGasUsed {
                        declared: block.header.gas_used,
                        computed: result.gas_used,
                    });
                }
                let entry = (Arc::new(result.state), Arc::new(result.receipts));
                executed_memo()
                    .write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(memo_key, entry.clone());
                entry
            }
        };

        let parent_td = self.total_difficulty[&block.header.parent];
        let td = parent_td.saturating_add(block.header.difficulty);
        self.total_difficulty.insert(hash, td);
        self.states.insert(hash, exec_state);
        self.receipts.insert(hash, exec_receipts);
        let parent_hash = block.header.parent;
        self.blocks.insert(hash, block);

        // Fork choice: heaviest total difficulty. Equal-weight forks are
        // broken by the smaller block hash — a deterministic rule, so any two
        // replicas that have seen the same block set agree on the head
        // regardless of arrival order (first-seen tie-keeping would let
        // replicas diverge forever on a tied fork).
        let head_td = self.total_difficulty[&self.head];
        if td > head_td || (td == head_td && hash < self.head) {
            let old_head = self.head;
            self.head = hash;
            if parent_hash == old_head {
                Ok(ImportOutcome::Extended)
            } else {
                Ok(ImportOutcome::Reorged { old_head })
            }
        } else {
            Ok(ImportOutcome::SideChain)
        }
    }

    /// Builds an unsealed candidate block on the current head: executes `txs`,
    /// fills in roots and gas, and computes the retargeted difficulty. The
    /// caller still has to seal it (literal [`pow::mine`] or the simulated
    /// race) before importing.
    pub fn build_candidate(
        &self,
        miner: blockfed_crypto::H160,
        txs: Vec<Transaction>,
        timestamp_ns: u64,
        runtime: &mut dyn ContractRuntime,
    ) -> Block {
        let parent = self.head_block();
        let interval = timestamp_ns.saturating_sub(parent.header.timestamp_ns);
        let mut intervals = vec![interval];
        intervals.extend(self.recent_intervals(&self.head, 15));
        let difficulty = self.retarget_rule.from_history(
            parent.header.difficulty,
            parent.header.number + 1,
            &intervals,
            pow::TARGET_BLOCK_TIME_NS,
        );
        let env = BlockEnv {
            number: parent.header.number + 1,
            timestamp_ns,
            miner,
            gas_limit: parent.header.gas_limit,
        };
        let result = execute_block_txs(self.states[&self.head].as_ref(), &txs, &env, runtime);
        let header = Header {
            parent: self.head,
            number: parent.header.number + 1,
            timestamp_ns,
            miner,
            difficulty,
            nonce: 0,
            tx_root: Block::compute_tx_root(&txs),
            state_root: result.state.root(),
            gas_used: result.gas_used,
            gas_limit: parent.header.gas_limit,
        };
        Block {
            header,
            transactions: txs,
        }
    }
}

impl std::fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blockchain")
            .field("height", &self.height())
            .field("head", &self.head)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::NullRuntime;
    use blockfed_crypto::{KeyPair, H160};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    fn low_difficulty_chain(accounts: &[H160]) -> Blockchain {
        let spec = GenesisSpec::with_accounts(accounts, 1_000_000_000).with_difficulty(16);
        Blockchain::new(&spec)
    }

    fn sealed_block(chain: &Blockchain, miner: H160, txs: Vec<Transaction>, ts: u64) -> Block {
        let mut block = chain.build_candidate(miner, txs, ts, &mut NullRuntime);
        pow::mine(&mut block.header, 0, 10_000_000).expect("low difficulty seals fast");
        block
    }

    #[test]
    fn genesis_is_the_initial_head() {
        let chain = low_difficulty_chain(&[]);
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.head(), chain.genesis());
        assert_eq!(chain.canonical_chain().len(), 1);
        assert_eq!(chain.block_count(), 1);
    }

    #[test]
    fn import_extends_head_and_executes() {
        let k = key(1);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let recipient = key(2).address();
        let tx = Transaction::transfer(k.address(), recipient, 77, 0).signed(&k);
        let block = sealed_block(&chain, k.address(), vec![tx], 13_000_000_000);
        let outcome = chain.import(block, &mut NullRuntime).unwrap();
        assert_eq!(outcome, ImportOutcome::Extended);
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.state().balance(&recipient), 77);
        let receipts = chain.receipts(&chain.head()).unwrap();
        assert_eq!(receipts.len(), 1);
        assert!(receipts[0].is_success());
    }

    #[test]
    fn duplicate_import_is_noop() {
        let k = key(3);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let block = sealed_block(&chain, k.address(), vec![], 1_000);
        chain.import(block.clone(), &mut NullRuntime).unwrap();
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Ok(ImportOutcome::AlreadyKnown)
        );
    }

    #[test]
    fn orphans_are_rejected() {
        let k = key(4);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let mut block = sealed_block(&chain, k.address(), vec![], 1_000);
        block.header.parent = blockfed_crypto::sha256::sha256(b"nowhere");
        pow::mine(&mut block.header, 0, 10_000_000).unwrap();
        assert!(matches!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::UnknownParent(_))
        ));
    }

    #[test]
    fn bad_seal_rejected_under_full_policy() {
        let k = key(5);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000).with_difficulty(u128::MAX / 2);
        let mut chain = Blockchain::new(&spec);
        // Candidate without real mining: astronomically unlikely to seal.
        let block = chain.build_candidate(k.address(), vec![], 1_000, &mut NullRuntime);
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::BadSeal)
        );
    }

    #[test]
    fn simulated_policy_skips_seal_check() {
        let k = key(6);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000).with_difficulty(u128::MAX / 2);
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let block = chain.build_candidate(k.address(), vec![], 1_000, &mut NullRuntime);
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Ok(ImportOutcome::Extended)
        );
    }

    #[test]
    fn tampered_state_root_rejected() {
        let k = key(7);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let mut block = sealed_block(&chain, k.address(), vec![], 1_000);
        block.header.state_root = blockfed_crypto::sha256::sha256(b"fake");
        pow::mine(&mut block.header, 0, 10_000_000).unwrap();
        assert!(matches!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::BadStateRoot { .. })
        ));
    }

    #[test]
    fn execution_memo_never_crosses_runtime_semantics() {
        // A runtime whose contract calls credit a sink account — semantics
        // that diverge from NullRuntime's no-op the moment a contract runs.
        struct CreditRuntime;
        impl ContractRuntime for CreditRuntime {
            fn execute(
                &mut self,
                _ctx: &CallContext,
                _code: &[u8],
                state: &mut State,
            ) -> crate::runtime::ExecOutcome {
                state.credit(H160::from_bytes([0xCC; 20]), 7);
                crate::runtime::ExecOutcome::ok()
            }
            fn execution_fingerprint(&self) -> u64 {
                0xC4ED17
            }
        }
        use crate::runtime::CallContext;

        let k = key(21);
        let contract = H160::from_bytes([0xAA; 20]);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000)
            .with_difficulty(16)
            .with_code(contract, vec![0x01]);
        let tx = Transaction::call(k.address(), contract, vec![], 0)
            .with_gas_limit(1_000_000)
            .signed(&k);

        // Build + import under CreditRuntime: validated, hence memoized.
        let mut crediting = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let block = crediting.build_candidate(k.address(), vec![tx], 1_000, &mut CreditRuntime);
        crediting
            .import(block.clone(), &mut CreditRuntime)
            .expect("valid under its own runtime");
        assert_eq!(crediting.state().balance(&H160::from_bytes([0xCC; 20])), 7);

        // The identical block under NullRuntime re-executes (no memo hit for
        // a different fingerprint) and must fail its own state-root check —
        // not silently adopt the crediting runtime's state.
        let mut nulled = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        assert!(matches!(
            nulled.import(block, &mut NullRuntime),
            Err(ImportError::BadStateRoot { .. })
        ));
    }

    #[test]
    fn tampered_tx_root_rejected() {
        let k = key(8);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0).signed(&k);
        let mut block = sealed_block(&chain, k.address(), vec![tx], 1_000);
        block.transactions.clear();
        pow::mine(&mut block.header, 0, 10_000_000).unwrap();
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::BadTxRoot)
        );
    }

    #[test]
    fn bad_number_and_timestamp_rejected() {
        let k = key(9);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let mut wrong_number = sealed_block(&chain, k.address(), vec![], 1_000);
        wrong_number.header.number = 7;
        pow::mine(&mut wrong_number.header, 0, 10_000_000).unwrap();
        assert!(matches!(
            chain.import(wrong_number, &mut NullRuntime),
            Err(ImportError::BadNumber {
                expected: 1,
                got: 7
            })
        ));

        let mut stale_ts = sealed_block(&chain, k.address(), vec![], 1_000);
        stale_ts.header.timestamp_ns = 0; // genesis is 0; must be strictly greater
        pow::mine(&mut stale_ts.header, 0, 10_000_000).unwrap();
        assert_eq!(
            chain.import(stale_ts, &mut NullRuntime),
            Err(ImportError::BadTimestamp)
        );
    }

    #[test]
    fn fork_choice_prefers_heavier_chain_and_reorgs() {
        let k = key(10);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let genesis = chain.head();

        // Block A extends genesis; becomes head.
        let block_a = sealed_block(&chain, k.address(), vec![], 1_000);
        let a_hash = block_a.hash();
        chain.import(block_a, &mut NullRuntime).unwrap();
        assert_eq!(chain.head(), a_hash);

        // Competing block B also on genesis: side chain (equal TD keeps head).
        let mut block_b = Block {
            header: Header {
                parent: genesis,
                number: 1,
                timestamp_ns: 2_000,
                miner: k.address(),
                difficulty: chain.block(&a_hash).unwrap().header.difficulty,
                nonce: 0,
                tx_root: H256::zero(),
                state_root: chain.state_at(&genesis).unwrap().root(),
                gas_used: 0,
                gas_limit: chain.head_block().header.gas_limit,
            },
            transactions: vec![],
        };
        pow::mine(&mut block_b.header, 0, 10_000_000).unwrap();
        let b_hash = block_b.hash();
        assert_eq!(
            chain.import(block_b, &mut NullRuntime),
            Ok(ImportOutcome::SideChain)
        );
        assert_eq!(chain.head(), a_hash);

        // Extend B: the B-branch becomes heavier and triggers a reorg.
        let parent_b = chain.block(&b_hash).unwrap().clone();
        let mut block_c = Block {
            header: Header {
                parent: b_hash,
                number: 2,
                timestamp_ns: 3_000,
                miner: k.address(),
                difficulty: pow::next_difficulty(parent_b.header.difficulty, 1_000),
                nonce: 0,
                tx_root: H256::zero(),
                state_root: chain.state_at(&b_hash).unwrap().root(),
                gas_used: 0,
                gas_limit: parent_b.header.gas_limit,
            },
            transactions: vec![],
        };
        pow::mine(&mut block_c.header, 0, 10_000_000).unwrap();
        let outcome = chain.import(block_c, &mut NullRuntime).unwrap();
        assert_eq!(outcome, ImportOutcome::Reorged { old_head: a_hash });
        assert_eq!(chain.height(), 2);
        let canon = chain.canonical_chain();
        assert!(canon.contains(&b_hash));
        assert!(!canon.contains(&a_hash));
    }

    #[test]
    fn block_by_number_walks_canonical_chain() {
        let k = key(11);
        let mut chain = low_difficulty_chain(&[k.address()]);
        for i in 1..=3u64 {
            let b = sealed_block(&chain, k.address(), vec![], i * 1_000);
            chain.import(b, &mut NullRuntime).unwrap();
        }
        assert_eq!(chain.block_by_number(0).unwrap().number(), 0);
        assert_eq!(chain.block_by_number(2).unwrap().number(), 2);
        assert!(chain.block_by_number(9).is_none());
    }

    #[test]
    fn difficulty_retargets_along_the_chain() {
        let k = key(12);
        let mut chain = low_difficulty_chain(&[k.address()]);
        // Fast blocks (1 ms apart) push difficulty up from 16.
        let mut last_difficulty = 16u128;
        for i in 1..=5u64 {
            let b = sealed_block(&chain, k.address(), vec![], i * 1_000_000);
            assert!(b.header.difficulty >= last_difficulty);
            last_difficulty = b.header.difficulty;
            chain.import(b, &mut NullRuntime).unwrap();
        }
    }

    #[test]
    fn recent_intervals_walks_newest_first_and_stops_at_genesis() {
        let k = key(30);
        let mut chain = low_difficulty_chain(&[k.address()]);
        // Genesis at t=0; blocks at 10, 25, 45 -> intervals 10, 15, 20 (ns).
        for ts in [10u64, 25, 45] {
            let b = sealed_block(&chain, k.address(), vec![], ts);
            chain.import(b, &mut NullRuntime).unwrap();
        }
        let head = chain.head();
        assert_eq!(chain.recent_intervals(&head, 10), vec![20, 15, 10]);
        assert_eq!(chain.recent_intervals(&head, 2), vec![20, 15]);
        assert!(chain.recent_intervals(&chain.genesis(), 10).is_empty());
    }

    #[test]
    fn retarget_rule_is_homestead_by_default_and_switchable() {
        let k = key(31);
        let chain = low_difficulty_chain(&[k.address()]);
        assert_eq!(
            chain.retarget_rule(),
            crate::retarget::RetargetRule::Homestead
        );
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(16);
        let chain = Blockchain::new(&spec)
            .with_retarget_rule(crate::retarget::RetargetRule::MovingAverage { window: 4 });
        assert_eq!(
            chain.retarget_rule(),
            crate::retarget::RetargetRule::MovingAverage { window: 4 }
        );
    }

    #[test]
    fn moving_average_chain_retargets_at_epoch_boundaries() {
        let k = key(32);
        let spec =
            GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(100_000);
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated)
            .with_retarget_rule(crate::retarget::RetargetRule::MovingAverage { window: 4 });
        // Blocks arriving far faster than the 13 s target.
        let step = pow::TARGET_BLOCK_TIME_NS / 4;
        let mut difficulties = Vec::new();
        for i in 1..=8u64 {
            let b = chain.build_candidate(k.address(), vec![], i * step, &mut NullRuntime);
            difficulties.push(b.header.difficulty);
            chain.import(b, &mut NullRuntime).unwrap();
        }
        // Blocks 1-3 inherit genesis difficulty; block 4 (epoch boundary)
        // jumps; 5-7 inherit; block 8 jumps again.
        assert_eq!(difficulties[0], 100_000);
        assert_eq!(difficulties[1], 100_000);
        assert_eq!(difficulties[2], 100_000);
        assert!(
            difficulties[3] > 150_000,
            "no epoch retarget: {difficulties:?}"
        );
        assert_eq!(difficulties[4], difficulties[3]);
        assert!(
            difficulties[7] > difficulties[3],
            "second epoch flat: {difficulties:?}"
        );
    }

    #[test]
    fn homestead_candidate_difficulty_matches_pow_helper() {
        let k = key(33);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let b1 = sealed_block(&chain, k.address(), vec![], 1_000);
        chain.import(b1, &mut NullRuntime).unwrap();
        let parent = chain.head_block().header.clone();
        let ts = parent.timestamp_ns + 5_000_000_000;
        let candidate = chain.build_candidate(k.address(), vec![], ts, &mut NullRuntime);
        assert_eq!(
            candidate.header.difficulty,
            pow::next_difficulty(parent.difficulty, ts - parent.timestamp_ns)
        );
    }
}
