//! The blockchain: block storage, validation, execution, total-difficulty fork
//! choice, and candidate-block building for miners.

use std::collections::HashMap;
use std::sync::Arc;

use blockfed_crypto::H256;

use crate::block::{Block, Header};
use crate::executor::{execute_block_txs_with, BlockEnv};
use crate::genesis::GenesisSpec;
use crate::pow;
use crate::receipt::Receipt;
use crate::runtime::ContractRuntime;
use crate::state::{State, StateDelta};
use crate::store::ChainStore;
use crate::tx::Transaction;

/// How strictly imported seals are checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealPolicy {
    /// Require `hash(header) ≤ target` (real proof-of-work).
    Full,
    /// Trust the seal; the mining race was decided by the discrete-event
    /// simulation upstream (statistically equivalent, documented in DESIGN.md).
    Simulated,
}

/// Why a block was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The parent block is unknown (orphan).
    UnknownParent(H256),
    /// The parent block is known but its state was pruned below the
    /// finalized ancestor, so the import cannot re-execute. Only possible on
    /// a chain with [`Blockchain::with_prune_depth`] (or after an explicit
    /// [`Blockchain::prune_states`]) and only for blocks forking off below
    /// the finalized height.
    StatePruned(H256),
    /// Height is not parent height + 1.
    BadNumber {
        /// Expected height.
        expected: u64,
        /// Height in the header.
        got: u64,
    },
    /// Timestamp is not after the parent's.
    BadTimestamp,
    /// The proof-of-work seal does not meet the difficulty target.
    BadSeal,
    /// The header's transaction root does not match the body.
    BadTxRoot,
    /// Re-execution produced a different state root.
    BadStateRoot {
        /// Root the header declared.
        declared: H256,
        /// Root re-execution produced.
        computed: H256,
    },
    /// Re-execution produced different gas usage.
    BadGasUsed {
        /// Gas the header declared.
        declared: u64,
        /// Gas re-execution measured.
        computed: u64,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::UnknownParent(h) => write!(f, "unknown parent {h}"),
            ImportError::StatePruned(h) => write!(f, "parent state pruned: {h}"),
            ImportError::BadNumber { expected, got } => {
                write!(f, "bad height: expected {expected}, got {got}")
            }
            ImportError::BadTimestamp => write!(f, "timestamp not after parent"),
            ImportError::BadSeal => write!(f, "proof-of-work seal invalid"),
            ImportError::BadTxRoot => write!(f, "transaction root mismatch"),
            ImportError::BadStateRoot { .. } => write!(f, "state root mismatch"),
            ImportError::BadGasUsed { declared, computed } => {
                write!(
                    f,
                    "gas used mismatch: declared {declared}, computed {computed}"
                )
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// What importing a block did to the canonical chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportOutcome {
    /// The block extended the canonical head.
    Extended,
    /// The block was valid but landed on a side chain.
    SideChain,
    /// The block triggered a reorganization to a heavier fork.
    Reorged {
        /// The head before the reorg.
        old_head: H256,
    },
    /// The block was already known; nothing changed.
    AlreadyKnown,
}

/// How a block's post-state is stored: a full snapshot, or a structural
/// diff against the parent's state (materialized on demand by
/// [`Blockchain::state_at`]).
#[derive(Debug, Clone)]
enum StateEntry {
    /// A full, materialized state (genesis, every
    /// `snapshot_interval`-aligned height, and re-anchor points after
    /// pruning or forking).
    Snapshot(Arc<State>),
    /// The diff this block applies on top of its parent's state.
    Delta {
        parent: H256,
        delta: Arc<StateDelta>,
    },
}

/// Default height interval between full state snapshots; blocks in between
/// carry only their diff against the parent.
const DEFAULT_SNAPSHOT_INTERVAL: u64 = 32;

/// An in-memory blockchain backed by a run-scoped [`ChainStore`].
///
/// Per-block states are kept as structural diffs with periodic full
/// snapshots (see [`Blockchain::with_snapshot_interval`]), so the chain
/// holds one snapshot plus O(changed accounts) per block instead of a full
/// state clone per block. Validated executions and signature verdicts are
/// memoized in the store, so N simulated peers sharing one store (see
/// [`Blockchain::with_store`]) execute each block once instead of N times —
/// and the memos die with the store handle instead of living for the
/// process. [`Blockchain::fork_at`] branches a new chain off any stored
/// block in O(ancestors) pointer copies, and [`Blockchain::prune_states`]
/// drops state entries below a finalized ancestor.
#[derive(Clone)]
pub struct Blockchain {
    blocks: HashMap<H256, Arc<Block>>,
    states: HashMap<H256, StateEntry>,
    receipts: HashMap<H256, Arc<Vec<Receipt>>>,
    total_difficulty: HashMap<H256, u128>,
    head: H256,
    head_state: Arc<State>,
    genesis: H256,
    seal_policy: SealPolicy,
    retarget_rule: crate::retarget::RetargetRule,
    store: ChainStore,
    snapshot_interval: u64,
    prune_depth: Option<u64>,
}

impl Blockchain {
    /// Creates a chain from a genesis spec with full seal checking.
    pub fn new(spec: &GenesisSpec) -> Self {
        Self::with_seal_policy(spec, SealPolicy::Full)
    }

    /// Creates a chain with an explicit seal policy and a fresh, private
    /// [`ChainStore`].
    pub fn with_seal_policy(spec: &GenesisSpec, seal_policy: SealPolicy) -> Self {
        Self::with_store(spec, seal_policy, ChainStore::new())
    }

    /// Creates a chain backed by an explicit store. Chains constructed from
    /// the same handle share validated executions and signature verdicts —
    /// this is how one run's peers collapse O(peers) re-execution to one,
    /// without anything leaking past the handle's lifetime.
    pub fn with_store(spec: &GenesisSpec, seal_policy: SealPolicy, store: ChainStore) -> Self {
        let (genesis_block, genesis_state) = spec.build();
        let genesis_hash = genesis_block.hash();
        let genesis_state = Arc::new(genesis_state);
        let mut blocks = HashMap::new();
        let mut states = HashMap::new();
        let mut total_difficulty = HashMap::new();
        blocks.insert(genesis_hash, Arc::new(genesis_block));
        states.insert(
            genesis_hash,
            StateEntry::Snapshot(Arc::clone(&genesis_state)),
        );
        total_difficulty.insert(genesis_hash, spec.difficulty);
        Blockchain {
            blocks,
            states,
            receipts: HashMap::new(),
            total_difficulty,
            head: genesis_hash,
            head_state: genesis_state,
            genesis: genesis_hash,
            seal_policy,
            retarget_rule: crate::retarget::RetargetRule::Homestead,
            store,
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
            prune_depth: None,
        }
    }

    /// The store backing this chain.
    pub fn store(&self) -> &ChainStore {
        &self.store
    }

    /// Sets the height interval between full state snapshots (builder
    /// style). Smaller intervals materialize historical states faster;
    /// larger ones hold less memory. Must be ≥ 1.
    #[must_use]
    pub fn with_snapshot_interval(mut self, interval: u64) -> Self {
        self.snapshot_interval = interval.max(1);
        self
    }

    /// Enables automatic state pruning (builder style): after every head
    /// advance, state entries that cannot be materialized from the canonical
    /// ancestor `depth` blocks below the head are dropped (see
    /// [`Blockchain::prune_states`]). Blocks and receipts are never pruned.
    #[must_use]
    pub fn with_prune_depth(mut self, depth: u64) -> Self {
        self.prune_depth = Some(depth);
        self
    }

    /// The difficulty-retarget rule used by [`Blockchain::build_candidate`]
    /// (Homestead by default).
    pub fn retarget_rule(&self) -> crate::retarget::RetargetRule {
        self.retarget_rule
    }

    /// Switches the difficulty-retarget rule used when building candidates
    /// (builder style). Existing blocks are untouched: the rule is a pure
    /// function of chain history, so miners can change policy at any height.
    #[must_use]
    pub fn with_retarget_rule(mut self, rule: crate::retarget::RetargetRule) -> Self {
        self.retarget_rule = rule;
        self
    }

    /// Block intervals (nanoseconds, newest first) of the chain ending at
    /// `from`, up to `max` entries, stopping at genesis.
    pub fn recent_intervals(&self, from: &H256, max: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(max);
        let mut cursor = *from;
        while out.len() < max {
            let Some(block) = self.blocks.get(&cursor) else {
                break;
            };
            if cursor == self.genesis {
                break;
            }
            let parent = &self.blocks[&block.header.parent];
            out.push(
                block
                    .header
                    .timestamp_ns
                    .saturating_sub(parent.header.timestamp_ns),
            );
            cursor = block.header.parent;
        }
        out
    }

    /// The canonical head hash.
    pub fn head(&self) -> H256 {
        self.head
    }

    /// The canonical head block.
    pub fn head_block(&self) -> &Block {
        self.blocks[&self.head].as_ref()
    }

    /// The genesis hash.
    pub fn genesis(&self) -> H256 {
        self.genesis
    }

    /// Canonical height.
    pub fn height(&self) -> u64 {
        self.head_block().number()
    }

    /// The state at the canonical head.
    pub fn state(&self) -> &State {
        self.head_state.as_ref()
    }

    /// The state after a given block: the cached head state, a stored
    /// snapshot, or a state materialized by replaying the block's delta
    /// chain forward from the nearest snapshot. `None` if the block is
    /// unknown or its state was pruned.
    pub fn state_at(&self, hash: &H256) -> Option<Arc<State>> {
        if *hash == self.head {
            return Some(Arc::clone(&self.head_state));
        }
        // Walk deltas back to a snapshot, then replay them forward.
        let mut path: Vec<Arc<StateDelta>> = Vec::new();
        let mut cursor = *hash;
        let base = loop {
            match self.states.get(&cursor)? {
                StateEntry::Snapshot(s) => break Arc::clone(s),
                StateEntry::Delta { parent, delta } => {
                    path.push(Arc::clone(delta));
                    if *parent == self.head {
                        break Arc::clone(&self.head_state);
                    }
                    cursor = *parent;
                }
            }
        };
        if path.is_empty() {
            return Some(base);
        }
        let mut state = (*base).clone();
        for delta in path.iter().rev() {
            state.apply(delta);
        }
        Some(Arc::new(state))
    }

    /// A block by hash.
    pub fn block(&self, hash: &H256) -> Option<&Block> {
        self.blocks.get(hash).map(|b| b.as_ref())
    }

    /// A block by hash as a shared handle (no copy), for re-import into a
    /// forked chain or another peer.
    pub fn block_arc(&self, hash: &H256) -> Option<Arc<Block>> {
        self.blocks.get(hash).cloned()
    }

    /// Whether a block is known.
    pub fn contains(&self, hash: &H256) -> bool {
        self.blocks.contains_key(hash)
    }

    /// Receipts of a block's transactions, if known.
    pub fn receipts(&self, hash: &H256) -> Option<&[Receipt]> {
        self.receipts.get(hash).map(|r| r.as_slice())
    }

    /// Total difficulty of a block.
    pub fn total_difficulty_of(&self, hash: &H256) -> Option<u128> {
        self.total_difficulty.get(hash).copied()
    }

    /// Number of blocks stored (including side chains and genesis).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Hashes of the canonical chain from genesis to head.
    pub fn canonical_chain(&self) -> Vec<H256> {
        let mut out = Vec::with_capacity(self.height() as usize + 1);
        let mut cursor = self.head;
        loop {
            out.push(cursor);
            if cursor == self.genesis {
                break;
            }
            cursor = self.blocks[&cursor].header.parent;
        }
        out.reverse();
        out
    }

    /// The canonical block at a height, if within range.
    pub fn block_by_number(&self, number: u64) -> Option<&Block> {
        let chain = self.canonical_chain();
        chain.get(number as usize).map(|h| self.blocks[h].as_ref())
    }

    /// Validates and imports a block, executing its transactions.
    ///
    /// # Errors
    ///
    /// Returns [`ImportError`] describing the first validation failure; the
    /// chain is unchanged on error.
    pub fn import(
        &mut self,
        block: Block,
        runtime: &mut dyn ContractRuntime,
    ) -> Result<ImportOutcome, ImportError> {
        self.import_arc(Arc::new(block), runtime)
    }

    /// [`Blockchain::import`] of a shared block handle — peers re-importing
    /// a gossiped block pass the same `Arc` around instead of cloning the
    /// block per chain.
    ///
    /// # Errors
    ///
    /// Returns [`ImportError`] describing the first validation failure; the
    /// chain is unchanged on error.
    pub fn import_arc(
        &mut self,
        block: Arc<Block>,
        runtime: &mut dyn ContractRuntime,
    ) -> Result<ImportOutcome, ImportError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Ok(ImportOutcome::AlreadyKnown);
        }
        let parent = self
            .blocks
            .get(&block.header.parent)
            .ok_or(ImportError::UnknownParent(block.header.parent))?;
        if block.header.number != parent.header.number + 1 {
            return Err(ImportError::BadNumber {
                expected: parent.header.number + 1,
                got: block.header.number,
            });
        }
        if block.header.timestamp_ns <= parent.header.timestamp_ns {
            return Err(ImportError::BadTimestamp);
        }
        if self.seal_policy == SealPolicy::Full && !pow::seal_valid(&block.header) {
            return Err(ImportError::BadSeal);
        }
        if !block.tx_root_valid() {
            return Err(ImportError::BadTxRoot);
        }

        // Re-execute on the parent state — unless a chain sharing this
        // chain's store already validated this exact block: a hit skips the
        // execution, the whole-state root hash, and the parent-state diff.
        // The memo key commits to the runtime's execution fingerprint, so
        // semantically different runtimes never share results (see
        // `store.rs` for the full soundness argument).
        let memo_key = (hash, runtime.execution_fingerprint());
        let (exec_state, exec_receipts, delta) = match self.store.lookup_exec(&memo_key) {
            Some(entry) => entry,
            None => {
                let parent_state = self
                    .state_at(&block.header.parent)
                    .ok_or(ImportError::StatePruned(block.header.parent))?;
                let env = BlockEnv {
                    number: block.header.number,
                    timestamp_ns: block.header.timestamp_ns,
                    miner: block.header.miner,
                    gas_limit: block.header.gas_limit,
                };
                let result = execute_block_txs_with(
                    &parent_state,
                    &block.transactions,
                    &env,
                    runtime,
                    &self.store.sig_cache(),
                );
                let computed_root = result.state.root();
                if computed_root != block.header.state_root {
                    return Err(ImportError::BadStateRoot {
                        declared: block.header.state_root,
                        computed: computed_root,
                    });
                }
                if result.gas_used != block.header.gas_used {
                    return Err(ImportError::BadGasUsed {
                        declared: block.header.gas_used,
                        computed: result.gas_used,
                    });
                }
                let delta = Arc::new(parent_state.diff(&result.state));
                let entry = (Arc::new(result.state), Arc::new(result.receipts), delta);
                self.store.insert_exec(memo_key, entry.clone());
                entry
            }
        };

        let parent_td = self.total_difficulty[&block.header.parent];
        let td = parent_td.saturating_add(block.header.difficulty);
        self.total_difficulty.insert(hash, td);
        // Snapshot on the interval (and whenever the parent's own state
        // entry is gone, e.g. pruned, so the new entry stays materializable);
        // otherwise store only the diff.
        let entry = if block.header.number.is_multiple_of(self.snapshot_interval)
            || !self.states.contains_key(&block.header.parent)
        {
            StateEntry::Snapshot(Arc::clone(&exec_state))
        } else {
            StateEntry::Delta {
                parent: block.header.parent,
                delta,
            }
        };
        self.states.insert(hash, entry);
        self.receipts.insert(hash, exec_receipts);
        let parent_hash = block.header.parent;
        self.blocks.insert(hash, block);

        // Fork choice: heaviest total difficulty. Equal-weight forks are
        // broken by the smaller block hash — a deterministic rule, so any two
        // replicas that have seen the same block set agree on the head
        // regardless of arrival order (first-seen tie-keeping would let
        // replicas diverge forever on a tied fork).
        let head_td = self.total_difficulty[&self.head];
        if td > head_td || (td == head_td && hash < self.head) {
            let old_head = self.head;
            self.head = hash;
            self.head_state = exec_state;
            if let Some(depth) = self.prune_depth {
                self.prune_states(depth);
            }
            if parent_hash == old_head {
                Ok(ImportOutcome::Extended)
            } else {
                Ok(ImportOutcome::Reorged { old_head })
            }
        } else {
            Ok(ImportOutcome::SideChain)
        }
    }

    /// Branches a new chain whose head is `hash`: the fork shares this
    /// chain's store (so replaying blocks hits the execution memo), its
    /// block/state/receipt entries for every ancestor of `hash` (`Arc`
    /// pointer copies — no state is cloned), and nothing else. Use it to
    /// replay an alternative suffix — e.g. re-run the tail of a finished
    /// run under a different aggregation strategy — without re-executing
    /// the shared prefix.
    ///
    /// Returns `None` if `hash` is unknown or its state was pruned.
    pub fn fork_at(&self, hash: &H256) -> Option<Blockchain> {
        let head_state = self.state_at(hash)?;
        let mut blocks = HashMap::new();
        let mut states = HashMap::new();
        let mut receipts = HashMap::new();
        let mut total_difficulty = HashMap::new();
        let mut cursor = *hash;
        loop {
            let block = self.blocks.get(&cursor)?;
            blocks.insert(cursor, Arc::clone(block));
            if let Some(entry) = self.states.get(&cursor) {
                states.insert(cursor, entry.clone());
            }
            if let Some(r) = self.receipts.get(&cursor) {
                receipts.insert(cursor, Arc::clone(r));
            }
            total_difficulty.insert(cursor, *self.total_difficulty.get(&cursor)?);
            if cursor == self.genesis {
                break;
            }
            cursor = block.header.parent;
        }
        // Anchor the fork head with a materialized snapshot so the fork can
        // always execute its first block, whatever was pruned upstream.
        states.insert(*hash, StateEntry::Snapshot(Arc::clone(&head_state)));
        Some(Blockchain {
            blocks,
            states,
            receipts,
            total_difficulty,
            head: *hash,
            head_state,
            genesis: self.genesis,
            seal_policy: self.seal_policy,
            retarget_rule: self.retarget_rule,
            store: self.store.clone(),
            snapshot_interval: self.snapshot_interval,
            prune_depth: self.prune_depth,
        })
    }

    /// Drops state entries that cannot be materialized from the canonical
    /// ancestor `depth` blocks below the head (the *finalized* block): the
    /// finalized state is snapshotted, then every state entry either at a
    /// height below the finalized one or on a side branch rooted below it is
    /// removed. Blocks, receipts, and total difficulties are kept — history
    /// audits still scan the full canonical chain; only the ability to
    /// *execute* from pruned heights is given up (imports forking off below
    /// the finalized block fail with [`ImportError::StatePruned`]).
    ///
    /// Returns the number of state entries dropped.
    pub fn prune_states(&mut self, depth: u64) -> usize {
        let fin_number = self.height().saturating_sub(depth);
        let canon = self.canonical_chain();
        let fin_hash = canon[fin_number as usize];
        if let Some(fin_state) = self.state_at(&fin_hash) {
            self.states
                .insert(fin_hash, StateEntry::Snapshot(fin_state));
        }
        let mut keep: HashMap<H256, bool> = HashMap::new();
        let hashes: Vec<H256> = self.states.keys().copied().collect();
        for h in hashes {
            self.decide_keep(h, fin_number, &mut keep);
        }
        let before = self.states.len();
        self.states
            .retain(|h, _| keep.get(h).copied().unwrap_or(false));
        before - self.states.len()
    }

    /// Whether the state entry at `hash` survives pruning at `fin_number`:
    /// it must sit at or above the finalized height and its delta chain must
    /// bottom out in a snapshot that also survives.
    fn decide_keep(&self, hash: H256, fin_number: u64, keep: &mut HashMap<H256, bool>) -> bool {
        if let Some(&k) = keep.get(&hash) {
            return k;
        }
        let verdict = match (self.blocks.get(&hash), self.states.get(&hash)) {
            (Some(block), Some(entry)) if block.header.number >= fin_number => match entry {
                StateEntry::Snapshot(_) => true,
                StateEntry::Delta { parent, .. } => self.decide_keep(*parent, fin_number, keep),
            },
            _ => false,
        };
        keep.insert(hash, verdict);
        verdict
    }

    /// Builds an unsealed candidate block on the current head: executes `txs`,
    /// fills in roots and gas, and computes the retargeted difficulty. The
    /// caller still has to seal it (literal [`pow::mine`] or the simulated
    /// race) before importing.
    pub fn build_candidate(
        &self,
        miner: blockfed_crypto::H160,
        txs: Vec<Transaction>,
        timestamp_ns: u64,
        runtime: &mut dyn ContractRuntime,
    ) -> Block {
        let parent = self.head_block();
        let interval = timestamp_ns.saturating_sub(parent.header.timestamp_ns);
        let mut intervals = vec![interval];
        intervals.extend(self.recent_intervals(&self.head, 15));
        let difficulty = self.retarget_rule.from_history(
            parent.header.difficulty,
            parent.header.number + 1,
            &intervals,
            pow::TARGET_BLOCK_TIME_NS,
        );
        let env = BlockEnv {
            number: parent.header.number + 1,
            timestamp_ns,
            miner,
            gas_limit: parent.header.gas_limit,
        };
        let result = execute_block_txs_with(
            self.head_state.as_ref(),
            &txs,
            &env,
            runtime,
            &self.store.sig_cache(),
        );
        let header = Header {
            parent: self.head,
            number: parent.header.number + 1,
            timestamp_ns,
            miner,
            difficulty,
            nonce: 0,
            tx_root: Block::compute_tx_root(&txs),
            state_root: result.state.root(),
            gas_used: result.gas_used,
            gas_limit: parent.header.gas_limit,
        };
        Block {
            header,
            transactions: txs,
        }
    }
}

impl std::fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blockchain")
            .field("height", &self.height())
            .field("head", &self.head)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::NullRuntime;
    use blockfed_crypto::{KeyPair, H160};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    fn low_difficulty_chain(accounts: &[H160]) -> Blockchain {
        let spec = GenesisSpec::with_accounts(accounts, 1_000_000_000).with_difficulty(16);
        Blockchain::new(&spec)
    }

    fn sealed_block(chain: &Blockchain, miner: H160, txs: Vec<Transaction>, ts: u64) -> Block {
        let mut block = chain.build_candidate(miner, txs, ts, &mut NullRuntime);
        pow::mine(&mut block.header, 0, 10_000_000).expect("low difficulty seals fast");
        block
    }

    #[test]
    fn genesis_is_the_initial_head() {
        let chain = low_difficulty_chain(&[]);
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.head(), chain.genesis());
        assert_eq!(chain.canonical_chain().len(), 1);
        assert_eq!(chain.block_count(), 1);
    }

    #[test]
    fn import_extends_head_and_executes() {
        let k = key(1);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let recipient = key(2).address();
        let tx = Transaction::transfer(k.address(), recipient, 77, 0).signed(&k);
        let block = sealed_block(&chain, k.address(), vec![tx], 13_000_000_000);
        let outcome = chain.import(block, &mut NullRuntime).unwrap();
        assert_eq!(outcome, ImportOutcome::Extended);
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.state().balance(&recipient), 77);
        let receipts = chain.receipts(&chain.head()).unwrap();
        assert_eq!(receipts.len(), 1);
        assert!(receipts[0].is_success());
    }

    #[test]
    fn duplicate_import_is_noop() {
        let k = key(3);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let block = sealed_block(&chain, k.address(), vec![], 1_000);
        chain.import(block.clone(), &mut NullRuntime).unwrap();
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Ok(ImportOutcome::AlreadyKnown)
        );
    }

    #[test]
    fn orphans_are_rejected() {
        let k = key(4);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let mut block = sealed_block(&chain, k.address(), vec![], 1_000);
        block.header.parent = blockfed_crypto::sha256::sha256(b"nowhere");
        pow::mine(&mut block.header, 0, 10_000_000).unwrap();
        assert!(matches!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::UnknownParent(_))
        ));
    }

    #[test]
    fn bad_seal_rejected_under_full_policy() {
        let k = key(5);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000).with_difficulty(u128::MAX / 2);
        let mut chain = Blockchain::new(&spec);
        // Candidate without real mining: astronomically unlikely to seal.
        let block = chain.build_candidate(k.address(), vec![], 1_000, &mut NullRuntime);
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::BadSeal)
        );
    }

    #[test]
    fn simulated_policy_skips_seal_check() {
        let k = key(6);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000).with_difficulty(u128::MAX / 2);
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let block = chain.build_candidate(k.address(), vec![], 1_000, &mut NullRuntime);
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Ok(ImportOutcome::Extended)
        );
    }

    #[test]
    fn tampered_state_root_rejected() {
        let k = key(7);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let mut block = sealed_block(&chain, k.address(), vec![], 1_000);
        block.header.state_root = blockfed_crypto::sha256::sha256(b"fake");
        pow::mine(&mut block.header, 0, 10_000_000).unwrap();
        assert!(matches!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::BadStateRoot { .. })
        ));
    }

    #[test]
    fn execution_memo_never_crosses_runtime_semantics() {
        // A runtime whose contract calls credit a sink account — semantics
        // that diverge from NullRuntime's no-op the moment a contract runs.
        struct CreditRuntime;
        impl ContractRuntime for CreditRuntime {
            fn execute(
                &mut self,
                _ctx: &CallContext,
                _code: &[u8],
                state: &mut State,
            ) -> crate::runtime::ExecOutcome {
                state.credit(H160::from_bytes([0xCC; 20]), 7);
                crate::runtime::ExecOutcome::ok()
            }
            fn execution_fingerprint(&self) -> u64 {
                0xC4ED17
            }
        }
        use crate::runtime::CallContext;

        let k = key(21);
        let contract = H160::from_bytes([0xAA; 20]);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000)
            .with_difficulty(16)
            .with_code(contract, vec![0x01]);
        let tx = Transaction::call(k.address(), contract, vec![], 0)
            .with_gas_limit(1_000_000)
            .signed(&k);

        // Build + import under CreditRuntime: validated, hence memoized in
        // the shared store.
        let store = ChainStore::new();
        let mut crediting = Blockchain::with_store(&spec, SealPolicy::Simulated, store.clone());
        let block = crediting.build_candidate(k.address(), vec![tx], 1_000, &mut CreditRuntime);
        crediting
            .import(block.clone(), &mut CreditRuntime)
            .expect("valid under its own runtime");
        assert_eq!(crediting.state().balance(&H160::from_bytes([0xCC; 20])), 7);

        // The identical block under NullRuntime re-executes (no memo hit for
        // a different fingerprint, even on the same store) and must fail its
        // own state-root check — not silently adopt the crediting runtime's
        // state.
        let mut nulled = Blockchain::with_store(&spec, SealPolicy::Simulated, store.clone());
        assert!(matches!(
            nulled.import(block, &mut NullRuntime),
            Err(ImportError::BadStateRoot { .. })
        ));
    }

    #[test]
    fn chains_sharing_a_store_execute_each_block_once() {
        let k = key(22);
        let store = ChainStore::new();
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(16);
        let mut a = Blockchain::with_store(&spec, SealPolicy::Simulated, store.clone());
        let mut b = Blockchain::with_store(&spec, SealPolicy::Simulated, store.clone());
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0).signed(&k);
        let block = Arc::new(a.build_candidate(k.address(), vec![tx], 1_000, &mut NullRuntime));
        a.import_arc(Arc::clone(&block), &mut NullRuntime).unwrap();
        let base = store.counters();
        b.import_arc(block, &mut NullRuntime).unwrap();
        let d = store.counters().since(&base);
        assert_eq!(d.exec_hits, 1, "peer B must reuse peer A's execution");
        assert_eq!(d.exec_misses, 0);
        assert_eq!(a.state().root(), b.state().root());
    }

    #[test]
    fn fresh_stores_are_isolated() {
        // The regression the store exists to allow: chains with private
        // stores share nothing, so one run can never observe another's
        // cached executions (the old process-wide memo made that possible).
        let k = key(23);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(16);
        let mut a = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let block = Arc::new(a.build_candidate(k.address(), vec![], 1_000, &mut NullRuntime));
        a.import_arc(Arc::clone(&block), &mut NullRuntime).unwrap();
        assert_eq!(a.store().exec_entries(), 1);

        let mut b = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        b.import_arc(block, &mut NullRuntime).unwrap();
        let c = b.store().counters();
        assert_eq!(c.exec_hits, 0, "a private store cannot see other runs");
        assert_eq!(c.exec_misses, 1);
    }

    #[test]
    fn tampered_tx_root_rejected() {
        let k = key(8);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0).signed(&k);
        let mut block = sealed_block(&chain, k.address(), vec![tx], 1_000);
        block.transactions.clear();
        pow::mine(&mut block.header, 0, 10_000_000).unwrap();
        assert_eq!(
            chain.import(block, &mut NullRuntime),
            Err(ImportError::BadTxRoot)
        );
    }

    #[test]
    fn bad_number_and_timestamp_rejected() {
        let k = key(9);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let mut wrong_number = sealed_block(&chain, k.address(), vec![], 1_000);
        wrong_number.header.number = 7;
        pow::mine(&mut wrong_number.header, 0, 10_000_000).unwrap();
        assert!(matches!(
            chain.import(wrong_number, &mut NullRuntime),
            Err(ImportError::BadNumber {
                expected: 1,
                got: 7
            })
        ));

        let mut stale_ts = sealed_block(&chain, k.address(), vec![], 1_000);
        stale_ts.header.timestamp_ns = 0; // genesis is 0; must be strictly greater
        pow::mine(&mut stale_ts.header, 0, 10_000_000).unwrap();
        assert_eq!(
            chain.import(stale_ts, &mut NullRuntime),
            Err(ImportError::BadTimestamp)
        );
    }

    #[test]
    fn fork_choice_prefers_heavier_chain_and_reorgs() {
        let k = key(10);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let genesis = chain.head();

        // Block A extends genesis; becomes head.
        let block_a = sealed_block(&chain, k.address(), vec![], 1_000);
        let a_hash = block_a.hash();
        chain.import(block_a, &mut NullRuntime).unwrap();
        assert_eq!(chain.head(), a_hash);

        // Competing block B also on genesis: side chain (equal TD keeps head).
        let mut block_b = Block {
            header: Header {
                parent: genesis,
                number: 1,
                timestamp_ns: 2_000,
                miner: k.address(),
                difficulty: chain.block(&a_hash).unwrap().header.difficulty,
                nonce: 0,
                tx_root: H256::zero(),
                state_root: chain.state_at(&genesis).unwrap().root(),
                gas_used: 0,
                gas_limit: chain.head_block().header.gas_limit,
            },
            transactions: vec![],
        };
        pow::mine(&mut block_b.header, 0, 10_000_000).unwrap();
        let b_hash = block_b.hash();
        assert_eq!(
            chain.import(block_b, &mut NullRuntime),
            Ok(ImportOutcome::SideChain)
        );
        assert_eq!(chain.head(), a_hash);

        // Extend B: the B-branch becomes heavier and triggers a reorg. The
        // parent is only read to fill in the header, so borrow it in place
        // instead of cloning the whole block.
        let parent_b = chain.block(&b_hash).unwrap();
        let mut block_c = Block {
            header: Header {
                parent: b_hash,
                number: 2,
                timestamp_ns: 3_000,
                miner: k.address(),
                difficulty: pow::next_difficulty(parent_b.header.difficulty, 1_000),
                nonce: 0,
                tx_root: H256::zero(),
                state_root: chain.state_at(&b_hash).unwrap().root(),
                gas_used: 0,
                gas_limit: parent_b.header.gas_limit,
            },
            transactions: vec![],
        };
        pow::mine(&mut block_c.header, 0, 10_000_000).unwrap();
        let outcome = chain.import(block_c, &mut NullRuntime).unwrap();
        assert_eq!(outcome, ImportOutcome::Reorged { old_head: a_hash });
        assert_eq!(chain.height(), 2);
        let canon = chain.canonical_chain();
        assert!(canon.contains(&b_hash));
        assert!(!canon.contains(&a_hash));
    }

    #[test]
    fn block_by_number_walks_canonical_chain() {
        let k = key(11);
        let mut chain = low_difficulty_chain(&[k.address()]);
        for i in 1..=3u64 {
            let b = sealed_block(&chain, k.address(), vec![], i * 1_000);
            chain.import(b, &mut NullRuntime).unwrap();
        }
        assert_eq!(chain.block_by_number(0).unwrap().number(), 0);
        assert_eq!(chain.block_by_number(2).unwrap().number(), 2);
        assert!(chain.block_by_number(9).is_none());
    }

    #[test]
    fn difficulty_retargets_along_the_chain() {
        let k = key(12);
        let mut chain = low_difficulty_chain(&[k.address()]);
        // Fast blocks (1 ms apart) push difficulty up from 16.
        let mut last_difficulty = 16u128;
        for i in 1..=5u64 {
            let b = sealed_block(&chain, k.address(), vec![], i * 1_000_000);
            assert!(b.header.difficulty >= last_difficulty);
            last_difficulty = b.header.difficulty;
            chain.import(b, &mut NullRuntime).unwrap();
        }
    }

    #[test]
    fn recent_intervals_walks_newest_first_and_stops_at_genesis() {
        let k = key(30);
        let mut chain = low_difficulty_chain(&[k.address()]);
        // Genesis at t=0; blocks at 10, 25, 45 -> intervals 10, 15, 20 (ns).
        for ts in [10u64, 25, 45] {
            let b = sealed_block(&chain, k.address(), vec![], ts);
            chain.import(b, &mut NullRuntime).unwrap();
        }
        let head = chain.head();
        assert_eq!(chain.recent_intervals(&head, 10), vec![20, 15, 10]);
        assert_eq!(chain.recent_intervals(&head, 2), vec![20, 15]);
        assert!(chain.recent_intervals(&chain.genesis(), 10).is_empty());
    }

    #[test]
    fn retarget_rule_is_homestead_by_default_and_switchable() {
        let k = key(31);
        let chain = low_difficulty_chain(&[k.address()]);
        assert_eq!(
            chain.retarget_rule(),
            crate::retarget::RetargetRule::Homestead
        );
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(16);
        let chain = Blockchain::new(&spec)
            .with_retarget_rule(crate::retarget::RetargetRule::MovingAverage { window: 4 });
        assert_eq!(
            chain.retarget_rule(),
            crate::retarget::RetargetRule::MovingAverage { window: 4 }
        );
    }

    #[test]
    fn moving_average_chain_retargets_at_epoch_boundaries() {
        let k = key(32);
        let spec =
            GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(100_000);
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated)
            .with_retarget_rule(crate::retarget::RetargetRule::MovingAverage { window: 4 });
        // Blocks arriving far faster than the 13 s target.
        let step = pow::TARGET_BLOCK_TIME_NS / 4;
        let mut difficulties = Vec::new();
        for i in 1..=8u64 {
            let b = chain.build_candidate(k.address(), vec![], i * step, &mut NullRuntime);
            difficulties.push(b.header.difficulty);
            chain.import(b, &mut NullRuntime).unwrap();
        }
        // Blocks 1-3 inherit genesis difficulty; block 4 (epoch boundary)
        // jumps; 5-7 inherit; block 8 jumps again.
        assert_eq!(difficulties[0], 100_000);
        assert_eq!(difficulties[1], 100_000);
        assert_eq!(difficulties[2], 100_000);
        assert!(
            difficulties[3] > 150_000,
            "no epoch retarget: {difficulties:?}"
        );
        assert_eq!(difficulties[4], difficulties[3]);
        assert!(
            difficulties[7] > difficulties[3],
            "second epoch flat: {difficulties:?}"
        );
    }

    #[test]
    fn homestead_candidate_difficulty_matches_pow_helper() {
        let k = key(33);
        let mut chain = low_difficulty_chain(&[k.address()]);
        let b1 = sealed_block(&chain, k.address(), vec![], 1_000);
        chain.import(b1, &mut NullRuntime).unwrap();
        let parent = chain.head_block().header.clone();
        let ts = parent.timestamp_ns + 5_000_000_000;
        let candidate = chain.build_candidate(k.address(), vec![], ts, &mut NullRuntime);
        assert_eq!(
            candidate.header.difficulty,
            pow::next_difficulty(parent.difficulty, ts - parent.timestamp_ns)
        );
    }

    /// Builds a chain of `n` simulated blocks, each carrying one transfer,
    /// so every block's state differs from its parent's.
    fn transfer_chain(k: &KeyPair, n: u64, snapshot_interval: u64) -> Blockchain {
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(16);
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated)
            .with_snapshot_interval(snapshot_interval);
        for i in 0..n {
            let tx = Transaction::transfer(k.address(), key(99).address(), 1, i).signed(k);
            let b = chain.build_candidate(k.address(), vec![tx], (i + 1) * 1_000, &mut NullRuntime);
            chain.import(b, &mut NullRuntime).unwrap();
        }
        chain
    }

    #[test]
    fn state_at_materializes_through_delta_chains() {
        let k = key(40);
        // Snapshot every 3 blocks: heights 1, 2, 4, 5, 7 are delta entries.
        let chain = transfer_chain(&k, 7, 3);
        for hash in chain.canonical_chain() {
            let declared = chain.block(&hash).unwrap().header.state_root;
            let materialized = chain.state_at(&hash).unwrap().root();
            assert_eq!(materialized, declared, "state at {hash} diverges");
        }
    }

    #[test]
    fn fork_at_branches_share_prefix_and_diverge() {
        let k = key(41);
        let chain = transfer_chain(&k, 4, 32);
        let canon = chain.canonical_chain();
        let fork_point = canon[2];

        let mut fork = chain.fork_at(&fork_point).expect("known block");
        assert_eq!(fork.head(), fork_point);
        assert_eq!(fork.height(), 2);
        assert_eq!(
            fork.state().root(),
            chain.state_at(&fork_point).unwrap().root()
        );
        // Blocks above the fork point are not in the fork.
        assert!(!fork.contains(&canon[3]));

        // Replaying the original suffix converges the fork on the same head
        // without re-executing (shared store serves the memo hits).
        let base = chain.store().counters();
        for hash in &canon[3..] {
            let block = chain.block_arc(hash).unwrap();
            fork.import_arc(block, &mut NullRuntime).unwrap();
        }
        assert_eq!(fork.head(), chain.head());
        assert_eq!(fork.state().root(), chain.state().root());
        let d = chain.store().counters().since(&base);
        assert_eq!(d.exec_misses, 0, "replay must hit the shared memo");
        assert_eq!(d.exec_hits, 2);

        // Diverging instead: a different block at height 3 reorgs the fork
        // independently of the original chain.
        let mut fork2 = chain.fork_at(&fork_point).unwrap();
        let tx = Transaction::transfer(k.address(), key(98).address(), 5, 2).signed(&k);
        let alt = fork2.build_candidate(k.address(), vec![tx], 999_000, &mut NullRuntime);
        fork2.import(alt, &mut NullRuntime).unwrap();
        assert_eq!(fork2.height(), 3);
        assert_ne!(fork2.head(), canon[3]);
        assert_eq!(chain.head(), *canon.last().unwrap(), "original untouched");
        assert!(!chain.contains(&fork2.head()), "fork block stays private");
    }

    #[test]
    fn prune_drops_old_states_but_keeps_history() {
        let k = key(42);
        let mut chain = transfer_chain(&k, 6, 2);
        let canon = chain.canonical_chain();
        let dropped = chain.prune_states(2);
        assert!(dropped > 0);
        // Below the finalized height (6 - 2 = 4): blocks and receipts stay,
        // states are gone (except where nothing existed to prune).
        for hash in &canon[..4] {
            assert!(chain.contains(hash), "blocks are never pruned");
            assert!(chain.state_at(hash).is_none(), "state below fin must go");
        }
        // At and above the finalized height everything still materializes.
        for hash in &canon[4..] {
            assert_eq!(
                chain.state_at(hash).unwrap().root(),
                chain.block(hash).unwrap().header.state_root
            );
        }
        // The head still extends normally after pruning.
        let tx = Transaction::transfer(k.address(), key(99).address(), 1, 6).signed(&k);
        let b = chain.build_candidate(k.address(), vec![tx], 100_000, &mut NullRuntime);
        chain.import(b, &mut NullRuntime).unwrap();
        assert_eq!(chain.height(), 7);

        // A block forking off below the finalized height cannot execute.
        let genesis = chain.genesis();
        let mut orphaned_fork = Block {
            header: Header {
                parent: genesis,
                number: 1,
                timestamp_ns: 500,
                miner: k.address(),
                difficulty: 16,
                nonce: 0,
                tx_root: Block::compute_tx_root(&[]),
                state_root: H256::zero(),
                gas_used: 0,
                gas_limit: chain.head_block().header.gas_limit,
            },
            transactions: vec![],
        };
        orphaned_fork.header.nonce = 1;
        assert_eq!(
            chain.import(orphaned_fork, &mut NullRuntime),
            Err(ImportError::StatePruned(genesis))
        );
    }

    #[test]
    fn auto_prune_bounds_state_entries() {
        let k = key(43);
        let spec = GenesisSpec::with_accounts(&[k.address()], 1_000_000_000).with_difficulty(16);
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated)
            .with_snapshot_interval(2)
            .with_prune_depth(2);
        for i in 0..10u64 {
            let tx = Transaction::transfer(k.address(), key(99).address(), 1, i).signed(&k);
            let b = chain.build_candidate(k.address(), vec![tx], (i + 1) * 1_000, &mut NullRuntime);
            chain.import(b, &mut NullRuntime).unwrap();
            // depth 2 keeps at most fin..head (3 heights) worth of states.
            assert!(
                chain.states.len() <= 3,
                "states grew: {}",
                chain.states.len()
            );
        }
        assert_eq!(chain.height(), 10);
        assert_eq!(chain.block_count(), 11, "blocks all retained");
    }

    #[test]
    fn cloned_chains_are_independent_views_over_shared_storage() {
        let k = key(44);
        let mut chain = transfer_chain(&k, 3, 32);
        let snapshot = chain.clone();
        let tx = Transaction::transfer(k.address(), key(99).address(), 1, 3).signed(&k);
        let b = chain.build_candidate(k.address(), vec![tx], 100_000, &mut NullRuntime);
        chain.import(b, &mut NullRuntime).unwrap();
        assert_eq!(chain.height(), 4);
        assert_eq!(snapshot.height(), 3, "clone keeps its own head");
        assert_eq!(
            snapshot.state().root(),
            chain.state_at(&snapshot.head()).unwrap().root()
        );
    }
}
