//! The contract-execution interface the chain delegates to.
//!
//! The chain crate stays VM-agnostic: block execution calls into a
//! [`ContractRuntime`], and `blockfed-vm` supplies the real implementations
//! (the MiniVM bytecode interpreter and the native FL registry).

use blockfed_crypto::H160;

use crate::receipt::LogEntry;
use crate::state::State;

/// Everything a contract invocation can see about its environment.
#[derive(Debug, Clone)]
pub struct CallContext {
    /// The externally owned account that signed the transaction.
    pub caller: H160,
    /// The contract being executed.
    pub contract: H160,
    /// Input data.
    pub calldata: Vec<u8>,
    /// Gas available for execution (after intrinsic costs).
    pub gas_budget: u64,
    /// Height of the block being built/validated.
    pub block_number: u64,
    /// Block timestamp (simulation nanoseconds).
    pub timestamp_ns: u64,
}

/// The result of a contract invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Whether the call succeeded (state changes keep) or reverted.
    pub success: bool,
    /// Gas consumed by execution (≤ the budget).
    pub gas_used: u64,
    /// Return data.
    pub output: Vec<u8>,
    /// Emitted event logs.
    pub logs: Vec<LogEntry>,
}

impl ExecOutcome {
    /// A successful, empty outcome.
    pub fn ok() -> Self {
        ExecOutcome {
            success: true,
            gas_used: 0,
            output: Vec::new(),
            logs: Vec::new(),
        }
    }

    /// A reverted outcome consuming `gas_used`.
    pub fn reverted(gas_used: u64) -> Self {
        ExecOutcome {
            success: false,
            gas_used,
            output: Vec::new(),
            logs: Vec::new(),
        }
    }
}

/// Executes contract code against the world state.
pub trait ContractRuntime {
    /// Runs `code` (the target account's stored code) under `ctx`.
    ///
    /// Implementations mutate `state` freely; the block executor snapshots the
    /// state beforehand and rolls back if `success` is false.
    fn execute(&mut self, ctx: &CallContext, code: &[u8], state: &mut State) -> ExecOutcome;

    /// A stable fingerprint of this runtime's *execution semantics*, used to
    /// key the block-execution memo in the run-scoped
    /// [`crate::ChainStore`]: a validated block's result is reused only
    /// between runtimes reporting the same fingerprint (and only by chains
    /// sharing the store handle). Two runtimes with equal fingerprints MUST
    /// execute every
    /// `(context, code, state)` identically — so a runtime whose behaviour
    /// depends on instance configuration (e.g. which native contracts are
    /// registered) must fold that configuration in.
    fn execution_fingerprint(&self) -> u64;
}

/// A runtime that treats every contract call as a successful no-op — useful
/// for chains that only move value (and for tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRuntime;

impl ContractRuntime for NullRuntime {
    fn execute(&mut self, _ctx: &CallContext, _code: &[u8], _state: &mut State) -> ExecOutcome {
        ExecOutcome::ok()
    }

    fn execution_fingerprint(&self) -> u64 {
        0 // the no-op semantics: one shared bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_runtime_is_a_noop() {
        let mut rt = NullRuntime;
        let mut state = State::new();
        let before = state.root();
        let ctx = CallContext {
            caller: H160::zero(),
            contract: H160::zero(),
            calldata: vec![1, 2, 3],
            gas_budget: 100,
            block_number: 1,
            timestamp_ns: 0,
        };
        let out = rt.execute(&ctx, &[0xFF], &mut state);
        assert!(out.success);
        assert_eq!(out.gas_used, 0);
        assert_eq!(state.root(), before);
    }

    #[test]
    fn outcome_constructors() {
        assert!(ExecOutcome::ok().success);
        let r = ExecOutcome::reverted(42);
        assert!(!r.success);
        assert_eq!(r.gas_used, 42);
    }
}
