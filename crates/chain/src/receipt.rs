//! Execution receipts and event logs.

use blockfed_crypto::{H160, H256};
use serde::{Deserialize, Serialize};

/// A contract event log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Emitting contract.
    pub address: H160,
    /// Topic (event discriminator).
    pub topic: H256,
    /// ABI-free payload bytes.
    pub data: Vec<u8>,
}

/// Outcome of executing one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStatus {
    /// Executed and committed.
    Success,
    /// Contract reverted; state changes rolled back, gas still charged.
    Reverted,
    /// Rejected before execution (bad nonce, unaffordable gas, bad signature).
    Invalid,
}

/// A transaction receipt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Receipt {
    /// Hash of the transaction this receipt belongs to.
    pub tx_hash: H256,
    /// Execution status.
    pub status: ExecStatus,
    /// Gas consumed.
    pub gas_used: u64,
    /// Return data from the contract (empty otherwise).
    pub output: Vec<u8>,
    /// Emitted logs.
    pub logs: Vec<LogEntry>,
}

impl Receipt {
    /// Whether the transaction executed successfully.
    pub fn is_success(&self) -> bool {
        self.status == ExecStatus::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_predicate() {
        let r = Receipt {
            tx_hash: H256::zero(),
            status: ExecStatus::Success,
            gas_used: 21_000,
            output: vec![],
            logs: vec![],
        };
        assert!(r.is_success());
        let mut failed = r.clone();
        failed.status = ExecStatus::Reverted;
        assert!(!failed.is_success());
        failed.status = ExecStatus::Invalid;
        assert!(!failed.is_success());
    }
}
