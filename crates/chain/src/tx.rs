//! Transactions: signed messages that move value, deploy contracts, call
//! contracts, and — in this system — carry federated model updates.

use blockfed_crypto::sha256::Sha256;
use blockfed_crypto::{KeyPair, PublicKey, Signature, SignatureError, H160, H256};
use serde::{Deserialize, Serialize};

use crate::store::SigCache;

/// A transaction, optionally signed.
///
/// # Examples
///
/// ```
/// use blockfed_chain::tx::Transaction;
/// use blockfed_crypto::KeyPair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kp = KeyPair::generate(&mut rng);
/// let tx = Transaction::transfer(kp.address(), kp.address(), 10, 0).signed(&kp);
/// assert!(tx.verify_signature().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Sender address (must match the signing key).
    pub from: H160,
    /// Recipient; `None` deploys a contract.
    pub to: Option<H160>,
    /// Sender's transaction counter.
    pub nonce: u64,
    /// Value transferred.
    pub value: u64,
    /// Maximum gas the sender will pay for.
    pub gas_limit: u64,
    /// Price per unit of gas.
    pub gas_price: u64,
    /// Calldata (contract input or init code).
    pub data: Vec<u8>,
    /// Declared size in bytes of the off-band artifact this transaction
    /// anchors (e.g. a 21.2 MB model); metered by gas and by the network
    /// bandwidth model.
    pub payload_bytes: u64,
    /// Signature material, filled in by [`Transaction::signed`].
    pub signature: Option<(PublicKey, Signature)>,
}

/// Error validating a transaction's signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The transaction carries no signature.
    Unsigned,
    /// The signature or key is invalid.
    BadSignature(SignatureError),
    /// The public key does not hash to the declared sender.
    SenderMismatch,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Unsigned => write!(f, "transaction is unsigned"),
            TxError::BadSignature(e) => write!(f, "bad signature: {e}"),
            TxError::SenderMismatch => write!(f, "public key does not match sender address"),
        }
    }
}

impl std::error::Error for TxError {}

impl Transaction {
    /// A plain value transfer.
    pub fn transfer(from: H160, to: H160, value: u64, nonce: u64) -> Self {
        Transaction {
            from,
            to: Some(to),
            nonce,
            value,
            gas_limit: 100_000,
            gas_price: 1,
            data: Vec::new(),
            payload_bytes: 0,
            signature: None,
        }
    }

    /// A contract call with calldata.
    pub fn call(from: H160, to: H160, data: Vec<u8>, nonce: u64) -> Self {
        Transaction {
            from,
            to: Some(to),
            nonce,
            value: 0,
            gas_limit: 50_000_000,
            gas_price: 1,
            data,
            payload_bytes: 0,
            signature: None,
        }
    }

    /// A contract deployment carrying init code.
    pub fn deploy(from: H160, code: Vec<u8>, nonce: u64) -> Self {
        Transaction {
            from,
            to: None,
            nonce,
            value: 0,
            gas_limit: 50_000_000,
            gas_price: 1,
            data: code,
            payload_bytes: 0,
            signature: None,
        }
    }

    /// Sets the declared off-band payload size (builder style).
    #[must_use]
    pub fn with_payload_bytes(mut self, bytes: u64) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Sets the gas price (builder style).
    #[must_use]
    pub fn with_gas_price(mut self, price: u64) -> Self {
        self.gas_price = price;
        self
    }

    /// Sets the gas limit (builder style).
    #[must_use]
    pub fn with_gas_limit(mut self, limit: u64) -> Self {
        self.gas_limit = limit;
        self
    }

    /// The canonical signing pre-image (all fields except the signature).
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(80 + self.data.len());
        out.extend_from_slice(self.from.as_bytes());
        match &self.to {
            Some(a) => {
                out.push(1);
                out.extend_from_slice(a.as_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.extend_from_slice(&self.value.to_le_bytes());
        out.extend_from_slice(&self.gas_limit.to_le_bytes());
        out.extend_from_slice(&self.gas_price.to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.payload_bytes.to_le_bytes());
        out
    }

    /// Signs the transaction, setting `from` to the key's address.
    #[must_use]
    pub fn signed(mut self, key: &KeyPair) -> Self {
        self.from = key.address();
        let sig = key.sign(&self.signing_bytes());
        self.signature = Some((key.public(), sig));
        self
    }

    /// Verifies the signature and that the key matches the sender address.
    ///
    /// This is the plain, uncached verification. In a simulated network
    /// every peer validates the same gossiped transaction — once in its
    /// mempool, again when executing each block — so Schnorr verification is
    /// re-run O(peers × inclusions) times and dominates the event loop at
    /// large N. Call sites on that hot path pass a run-scoped
    /// [`SigCache`] via [`Transaction::verify_signature_with`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`TxError`] describing what failed.
    pub fn verify_signature(&self) -> Result<(), TxError> {
        self.verify_signature_with(&SigCache::disabled())
    }

    /// [`Transaction::verify_signature`] through a run-scoped verdict cache.
    ///
    /// The verdict is a pure function of the transaction hash (which covers
    /// the signature), so one successful verification serves every chain
    /// sharing the cache's [`crate::ChainStore`]. Only successes are
    /// recorded: failures stay un-cached, and any tampering changes the
    /// hash. With [`SigCache::disabled`] this is exactly the plain
    /// verification.
    ///
    /// # Errors
    ///
    /// Returns [`TxError`] describing what failed.
    pub fn verify_signature_with(&self, cache: &SigCache) -> Result<(), TxError> {
        let (pk, sig) = self.signature.as_ref().ok_or(TxError::Unsigned)?;
        if pk.address() != self.from {
            return Err(TxError::SenderMismatch);
        }
        let hash = self.hash();
        if cache.check(&hash) {
            return Ok(());
        }
        pk.verify(&self.signing_bytes(), sig)
            .map_err(TxError::BadSignature)?;
        cache.record(hash);
        Ok(())
    }

    /// The transaction hash (covers the signature when present).
    pub fn hash(&self) -> H256 {
        let mut h = Sha256::new();
        h.update(&self.signing_bytes());
        if let Some((pk, sig)) = &self.signature {
            h.update(&pk.to_point_bytes());
            h.update(sig.digest().as_bytes());
        }
        h.finalize()
    }

    /// Whether this transaction creates a contract.
    pub fn is_deploy(&self) -> bool {
        self.to.is_none()
    }
}

/// The address of a contract deployed by `sender` at `nonce`
/// (`sha256(sender ‖ nonce)` truncated to 20 bytes).
pub fn contract_address(sender: H160, nonce: u64) -> H160 {
    let mut h = Sha256::new();
    h.update(sender.as_bytes());
    h.update(&nonce.to_le_bytes());
    let digest = h.finalize();
    let mut out = [0u8; 20];
    out.copy_from_slice(&digest.as_bytes()[12..]);
    H160::from_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn sign_and_verify() {
        let k = key(1);
        let tx = Transaction::transfer(H160::zero(), k.address(), 5, 0).signed(&k);
        assert_eq!(tx.from, k.address());
        assert!(tx.verify_signature().is_ok());
    }

    #[test]
    fn cached_verify_matches_plain_and_records_only_successes() {
        let store = crate::ChainStore::new();
        let cache = store.sig_cache();
        let k = key(9);
        let good = Transaction::transfer(H160::zero(), k.address(), 5, 0).signed(&k);
        assert!(good.verify_signature_with(&cache).is_ok());
        assert_eq!(store.sig_entries(), 1);
        // Second verification is served from the cache.
        assert!(good.verify_signature_with(&cache).is_ok());
        assert_eq!(store.counters().sig_hits, 1);
        // Failures are never recorded; tampering changes the hash, so the
        // tampered tx misses the cache and fails a fresh verification.
        let mut bad = good.clone();
        bad.value = 500;
        assert!(matches!(
            bad.verify_signature_with(&cache),
            Err(TxError::BadSignature(_))
        ));
        assert_eq!(store.sig_entries(), 1);
    }

    #[test]
    fn unsigned_rejected() {
        let tx = Transaction::transfer(H160::zero(), H160::zero(), 1, 0);
        assert_eq!(tx.verify_signature(), Err(TxError::Unsigned));
    }

    #[test]
    fn tampering_breaks_signature() {
        let k = key(2);
        let mut tx = Transaction::transfer(k.address(), H160::zero(), 5, 0).signed(&k);
        tx.value = 500;
        assert!(matches!(
            tx.verify_signature(),
            Err(TxError::BadSignature(_))
        ));
    }

    #[test]
    fn sender_spoofing_detected() {
        let k = key(3);
        let mut tx = Transaction::transfer(k.address(), H160::zero(), 5, 0).signed(&k);
        tx.from = H160::zero();
        assert_eq!(tx.verify_signature(), Err(TxError::SenderMismatch));
    }

    #[test]
    fn hash_is_stable_and_signature_sensitive() {
        let k = key(4);
        let unsigned = Transaction::transfer(k.address(), H160::zero(), 5, 0);
        let signed = unsigned.clone().signed(&k);
        assert_eq!(unsigned.hash(), unsigned.hash());
        assert_ne!(unsigned.hash(), signed.hash());
    }

    #[test]
    fn hash_covers_payload_bytes() {
        let a = Transaction::transfer(H160::zero(), H160::zero(), 0, 0);
        let b = a.clone().with_payload_bytes(1024);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn builders() {
        let tx = Transaction::call(H160::zero(), H160::zero(), vec![1, 2], 3)
            .with_gas_price(7)
            .with_gas_limit(9)
            .with_payload_bytes(11);
        assert_eq!(tx.gas_price, 7);
        assert_eq!(tx.gas_limit, 9);
        assert_eq!(tx.payload_bytes, 11);
        assert_eq!(tx.nonce, 3);
        assert!(!tx.is_deploy());
        assert!(Transaction::deploy(H160::zero(), vec![], 0).is_deploy());
    }

    #[test]
    fn contract_addresses_differ_by_nonce_and_sender() {
        let a = contract_address(H160::zero(), 0);
        let b = contract_address(H160::zero(), 1);
        let mut other = [0u8; 20];
        other[0] = 1;
        let c = contract_address(H160::from_bytes(other), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
