//! World state: accounts, balances, contract code and storage.

use std::collections::BTreeMap;

use blockfed_crypto::sha256::Sha256;
use blockfed_crypto::{H160, H256};
use serde::{Deserialize, Serialize};

/// One account's mutable state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Account {
    /// Transactions sent so far.
    pub nonce: u64,
    /// Spendable balance.
    pub balance: u64,
    /// Contract code (empty for externally owned accounts).
    pub code: Vec<u8>,
}

impl Account {
    /// Whether this account holds contract code.
    pub fn is_contract(&self) -> bool {
        !self.code.is_empty()
    }
}

/// The full world state. Deterministically hashable into a state root.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct State {
    accounts: BTreeMap<H160, Account>,
    storage: BTreeMap<H160, BTreeMap<H256, H256>>,
}

/// One block's structural change set against its parent state: the chain
/// store keeps these instead of full per-block state clones, materializing a
/// historical state by replaying deltas forward from the nearest snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDelta {
    /// Accounts written by the block; `None` marks a removed account.
    pub accounts: BTreeMap<H160, Option<Account>>,
    /// Storage slots written by the block; a zero value clears the slot.
    pub storage: BTreeMap<H160, BTreeMap<H256, H256>>,
}

impl StateDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty() && self.storage.is_empty()
    }
}

/// Error applying a state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// Sender balance is insufficient.
    InsufficientBalance {
        /// What the operation needed.
        needed: u64,
        /// What the account held.
        available: u64,
    },
    /// Transaction nonce does not match the account nonce.
    NonceMismatch {
        /// The account's expected next nonce.
        expected: u64,
        /// The nonce the transaction carried.
        got: u64,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::InsufficientBalance { needed, available } => {
                write!(f, "insufficient balance: need {needed}, have {available}")
            }
            StateError::NonceMismatch { expected, got } => {
                write!(f, "nonce mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl State {
    /// An empty state.
    pub fn new() -> Self {
        State::default()
    }

    /// Read-only view of an account (default if untouched).
    pub fn account(&self, addr: &H160) -> Account {
        self.accounts.get(addr).cloned().unwrap_or_default()
    }

    /// Mutable access, creating the account if absent.
    pub fn account_mut(&mut self, addr: H160) -> &mut Account {
        self.accounts.entry(addr).or_default()
    }

    /// Current balance.
    pub fn balance(&self, addr: &H160) -> u64 {
        self.accounts.get(addr).map(|a| a.balance).unwrap_or(0)
    }

    /// Current nonce.
    pub fn nonce(&self, addr: &H160) -> u64 {
        self.accounts.get(addr).map(|a| a.nonce).unwrap_or(0)
    }

    /// Credits an account (genesis allocation, mining rewards).
    pub fn credit(&mut self, addr: H160, amount: u64) {
        let acct = self.account_mut(addr);
        acct.balance = acct.balance.saturating_add(amount);
    }

    /// Debits an account.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InsufficientBalance`] without mutating on failure.
    pub fn debit(&mut self, addr: H160, amount: u64) -> Result<(), StateError> {
        let acct = self.account_mut(addr);
        if acct.balance < amount {
            return Err(StateError::InsufficientBalance {
                needed: amount,
                available: acct.balance,
            });
        }
        acct.balance -= amount;
        Ok(())
    }

    /// Transfers value between accounts.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InsufficientBalance`] without mutating on failure.
    pub fn transfer(&mut self, from: H160, to: H160, amount: u64) -> Result<(), StateError> {
        self.debit(from, amount)?;
        self.credit(to, amount);
        Ok(())
    }

    /// Consumes a nonce: verifies `got` matches and increments.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NonceMismatch`] without mutating on failure.
    pub fn consume_nonce(&mut self, addr: H160, got: u64) -> Result<(), StateError> {
        let expected = self.nonce(&addr);
        if expected != got {
            return Err(StateError::NonceMismatch { expected, got });
        }
        self.account_mut(addr).nonce += 1;
        Ok(())
    }

    /// Reads a contract storage slot (zero if unset).
    pub fn storage_get(&self, addr: &H160, key: &H256) -> H256 {
        self.storage
            .get(addr)
            .and_then(|slots| slots.get(key))
            .copied()
            .unwrap_or_else(H256::zero)
    }

    /// Writes a contract storage slot (writing zero clears it).
    pub fn storage_set(&mut self, addr: H160, key: H256, value: H256) {
        let slots = self.storage.entry(addr).or_default();
        if value.is_zero() {
            slots.remove(&key);
        } else {
            slots.insert(key, value);
        }
    }

    /// Number of non-zero storage slots under an address.
    pub fn storage_len(&self, addr: &H160) -> usize {
        self.storage.get(addr).map(BTreeMap::len).unwrap_or(0)
    }

    /// Deploys code at an address.
    pub fn set_code(&mut self, addr: H160, code: Vec<u8>) {
        self.account_mut(addr).code = code;
    }

    /// The contract code at an address (empty if none).
    pub fn code(&self, addr: &H160) -> Vec<u8> {
        self.accounts
            .get(addr)
            .map(|a| a.code.clone())
            .unwrap_or_default()
    }

    /// The structural diff from `self` to `next`: the per-block change set
    /// the chain store keeps instead of a full per-block state clone.
    /// `self.apply(&self.diff(next))` reproduces `next` up to empty storage
    /// maps (which [`State::root`] ignores).
    pub fn diff(&self, next: &State) -> StateDelta {
        let mut delta = StateDelta::default();
        for (addr, acct) in &next.accounts {
            if self.accounts.get(addr) != Some(acct) {
                delta.accounts.insert(*addr, Some(acct.clone()));
            }
        }
        for addr in self.accounts.keys() {
            if !next.accounts.contains_key(addr) {
                delta.accounts.insert(*addr, None);
            }
        }
        let empty = BTreeMap::new();
        for (addr, slots) in &next.storage {
            let old = self.storage.get(addr).unwrap_or(&empty);
            let mut changed = BTreeMap::new();
            for (k, v) in slots {
                if old.get(k) != Some(v) {
                    changed.insert(*k, *v);
                }
            }
            for k in old.keys() {
                if !slots.contains_key(k) {
                    changed.insert(*k, H256::zero());
                }
            }
            if !changed.is_empty() {
                delta.storage.insert(*addr, changed);
            }
        }
        for (addr, old) in &self.storage {
            if !next.storage.contains_key(addr) && !old.is_empty() {
                delta
                    .storage
                    .insert(*addr, old.keys().map(|k| (*k, H256::zero())).collect());
            }
        }
        delta
    }

    /// Applies a diff produced by [`State::diff`], replaying one block's
    /// change set on top of its parent state.
    pub fn apply(&mut self, delta: &StateDelta) {
        for (addr, acct) in &delta.accounts {
            match acct {
                Some(a) => {
                    self.accounts.insert(*addr, a.clone());
                }
                None => {
                    self.accounts.remove(addr);
                }
            }
        }
        for (addr, slots) in &delta.storage {
            for (k, v) in slots {
                self.storage_set(*addr, *k, *v);
            }
        }
    }

    /// Deterministic digest of the whole state (accounts and storage in
    /// canonical order) — the header's `state_root`.
    pub fn root(&self) -> H256 {
        let mut h = Sha256::new();
        for (addr, acct) in &self.accounts {
            h.update(addr.as_bytes());
            h.update(&acct.nonce.to_le_bytes());
            h.update(&acct.balance.to_le_bytes());
            h.update(&(acct.code.len() as u64).to_le_bytes());
            h.update(&acct.code);
        }
        for (addr, slots) in &self.storage {
            if slots.is_empty() {
                continue;
            }
            h.update(addr.as_bytes());
            for (k, v) in slots {
                h.update(k.as_bytes());
                h.update(v.as_bytes());
            }
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> H160 {
        let mut b = [0u8; 20];
        b[0] = n;
        H160::from_bytes(b)
    }

    #[test]
    fn fresh_accounts_are_zeroed() {
        let s = State::new();
        assert_eq!(s.balance(&addr(1)), 0);
        assert_eq!(s.nonce(&addr(1)), 0);
        assert!(!s.account(&addr(1)).is_contract());
    }

    #[test]
    fn credit_debit_roundtrip() {
        let mut s = State::new();
        s.credit(addr(1), 100);
        assert_eq!(s.balance(&addr(1)), 100);
        s.debit(addr(1), 30).unwrap();
        assert_eq!(s.balance(&addr(1)), 70);
        assert_eq!(
            s.debit(addr(1), 71),
            Err(StateError::InsufficientBalance {
                needed: 71,
                available: 70
            })
        );
        assert_eq!(s.balance(&addr(1)), 70, "failed debit must not mutate");
    }

    #[test]
    fn transfer_moves_value() {
        let mut s = State::new();
        s.credit(addr(1), 50);
        s.transfer(addr(1), addr(2), 20).unwrap();
        assert_eq!(s.balance(&addr(1)), 30);
        assert_eq!(s.balance(&addr(2)), 20);
        assert!(s.transfer(addr(1), addr(2), 31).is_err());
    }

    #[test]
    fn nonce_consumption_is_strict() {
        let mut s = State::new();
        s.consume_nonce(addr(1), 0).unwrap();
        s.consume_nonce(addr(1), 1).unwrap();
        assert_eq!(
            s.consume_nonce(addr(1), 1),
            Err(StateError::NonceMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(s.nonce(&addr(1)), 2);
    }

    #[test]
    fn storage_slots() {
        let mut s = State::new();
        let k = blockfed_crypto::sha256::sha256(b"slot");
        let v = blockfed_crypto::sha256::sha256(b"value");
        assert!(s.storage_get(&addr(1), &k).is_zero());
        s.storage_set(addr(1), k, v);
        assert_eq!(s.storage_get(&addr(1), &k), v);
        assert_eq!(s.storage_len(&addr(1)), 1);
        // Writing zero clears.
        s.storage_set(addr(1), k, H256::zero());
        assert_eq!(s.storage_len(&addr(1)), 0);
    }

    #[test]
    fn code_deployment() {
        let mut s = State::new();
        s.set_code(addr(3), vec![1, 2, 3]);
        assert!(s.account(&addr(3)).is_contract());
        assert_eq!(s.code(&addr(3)), vec![1, 2, 3]);
        assert_eq!(s.code(&addr(4)), Vec::<u8>::new());
    }

    #[test]
    fn root_changes_with_any_mutation() {
        let mut s = State::new();
        let r0 = s.root();
        s.credit(addr(1), 1);
        let r1 = s.root();
        assert_ne!(r0, r1);
        s.storage_set(addr(1), H256::zero(), blockfed_crypto::sha256::sha256(b"x"));
        let r2 = s.root();
        assert_ne!(r1, r2);
        // Same mutations from scratch give the same root (determinism).
        let mut t = State::new();
        t.credit(addr(1), 1);
        t.storage_set(addr(1), H256::zero(), blockfed_crypto::sha256::sha256(b"x"));
        assert_eq!(t.root(), r2);
    }

    #[test]
    fn diff_apply_roundtrip_reproduces_root() {
        let mut base = State::new();
        base.credit(addr(1), 100);
        base.credit(addr(2), 40);
        let k1 = blockfed_crypto::sha256::sha256(b"k1");
        let k2 = blockfed_crypto::sha256::sha256(b"k2");
        base.storage_set(addr(1), k1, blockfed_crypto::sha256::sha256(b"v1"));
        base.storage_set(addr(1), k2, blockfed_crypto::sha256::sha256(b"v2"));
        base.set_code(addr(3), vec![0xAA]);

        let mut next = base.clone();
        next.transfer(addr(1), addr(2), 25).unwrap();
        next.consume_nonce(addr(1), 0).unwrap();
        next.storage_set(addr(1), k1, H256::zero()); // slot cleared
        next.storage_set(addr(2), k2, blockfed_crypto::sha256::sha256(b"v3"));
        next.accounts.remove(&addr(3)); // account removed outright

        let delta = base.diff(&next);
        assert!(!delta.is_empty());
        assert_eq!(delta.accounts.get(&addr(3)), Some(&None));
        let mut replayed = base.clone();
        replayed.apply(&delta);
        assert_eq!(replayed.root(), next.root());
        assert_eq!(replayed.balance(&addr(2)), 65);
        assert!(replayed.storage_get(&addr(1), &k1).is_zero());
    }

    #[test]
    fn empty_diff_for_identical_states() {
        let mut s = State::new();
        s.credit(addr(1), 9);
        let delta = s.diff(&s.clone());
        assert!(delta.is_empty());
        let before = s.root();
        s.apply(&delta);
        assert_eq!(s.root(), before);
    }

    #[test]
    fn diff_handles_whole_storage_map_disappearing() {
        let k = blockfed_crypto::sha256::sha256(b"slot");
        let mut base = State::new();
        base.storage_set(addr(1), k, blockfed_crypto::sha256::sha256(b"v"));
        let mut next = base.clone();
        next.storage.remove(&addr(1));
        let delta = base.diff(&next);
        let mut replayed = base.clone();
        replayed.apply(&delta);
        assert_eq!(replayed.root(), next.root());
        assert!(replayed.storage_get(&addr(1), &k).is_zero());
    }

    #[test]
    fn root_is_insertion_order_independent() {
        let mut a = State::new();
        a.credit(addr(1), 5);
        a.credit(addr(2), 7);
        let mut b = State::new();
        b.credit(addr(2), 7);
        b.credit(addr(1), 5);
        assert_eq!(a.root(), b.root());
    }
}
