//! Proof-of-work: targets, difficulty retargeting, literal mining, and the
//! exponential-delay model used by the discrete-event simulation.
//!
//! Both paths honour the same target math: `target = U256::MAX / difficulty`,
//! block valid iff `hash(header) ≤ target`. Literal nonce search is used in
//! tests and micro-benchmarks at low difficulty; experiments sample mining
//! delays from the memoryless distribution `Exp(hashrate / difficulty)` —
//! statistically equivalent and fast.

use blockfed_crypto::sha256::{Midstate, Sha256};
use blockfed_crypto::{H256, U256};
use blockfed_sim::{Exponential, SimDuration};
use rand::Rng;

use crate::block::Header;

/// Minimum difficulty the retarget rule will descend to.
pub const MIN_DIFFICULTY: u128 = 16;
/// The paper's private-Ethereum block cadence target (~13 s, Ethereum PoW era).
pub const TARGET_BLOCK_TIME_NS: u64 = 13_000_000_000;

/// The proof-of-work target for a difficulty.
///
/// # Panics
///
/// Panics if `difficulty` is zero.
///
/// # Examples
///
/// ```
/// use blockfed_chain::pow::target_for;
/// use blockfed_crypto::U256;
///
/// assert_eq!(target_for(1), U256::MAX);
/// assert!(target_for(2) < U256::MAX);
/// ```
pub fn target_for(difficulty: u128) -> U256 {
    assert!(difficulty > 0, "difficulty must be positive");
    let (q, _) = U256::MAX.div_rem(U256::from_u128(difficulty));
    q
}

/// Whether a sealed header satisfies its own difficulty.
pub fn seal_valid(header: &Header) -> bool {
    hash_meets(header.hash(), header.difficulty)
}

/// Whether `hash` meets `difficulty`'s target.
pub fn hash_meets(hash: H256, difficulty: u128) -> bool {
    hash.meets_target(&target_for(difficulty))
}

/// Precomputed state for the nonce-search hot path.
///
/// A header's proof-of-work preimage is 172 bytes of which only the 8-byte
/// nonce varies between attempts. The context compresses the first 64-byte
/// block of the fixed prefix **once** (the SHA-256 midstate) and lays the
/// remaining 108 bytes out in a stack buffer, so each attempt patches 8 bytes
/// and runs 2 compression calls instead of 3 — a 1.5× reduction in hashing
/// work per nonce — with a bit-identical digest.
#[derive(Clone, Debug)]
pub struct MiningContext {
    midstate: Midstate,
    /// Remaining preimage after the first block: 20 fixed prefix bytes, the
    /// 8 nonce bytes, then the 80-byte fixed suffix.
    tail: [u8; Self::TAIL_LEN],
    target: U256,
}

impl MiningContext {
    const PREFIX_LEN: usize = 32 + 8 + 8 + 20 + 16; // parent..difficulty = 84
    const NONCE_AT: usize = Self::PREFIX_LEN - 64; // 20 bytes into the tail
    const TAIL_LEN: usize = Self::NONCE_AT + 8 + 80; // 108

    /// Prepares the midstate and tail for `header` (its current nonce is
    /// irrelevant).
    pub fn new(header: &Header) -> Self {
        let mut preimage = [0u8; 64 + Self::TAIL_LEN];
        let mut at = 0usize;
        fn put(buf: &mut [u8], at: &mut usize, bytes: &[u8]) {
            buf[*at..*at + bytes.len()].copy_from_slice(bytes);
            *at += bytes.len();
        }
        put(&mut preimage, &mut at, header.parent.as_bytes());
        put(&mut preimage, &mut at, &header.number.to_le_bytes());
        put(&mut preimage, &mut at, &header.timestamp_ns.to_le_bytes());
        put(&mut preimage, &mut at, header.miner.as_bytes());
        put(&mut preimage, &mut at, &header.difficulty.to_le_bytes());
        debug_assert_eq!(at, Self::PREFIX_LEN);
        put(&mut preimage, &mut at, &[0u8; 8]); // nonce placeholder
        put(&mut preimage, &mut at, header.tx_root.as_bytes());
        put(&mut preimage, &mut at, header.state_root.as_bytes());
        put(&mut preimage, &mut at, &header.gas_used.to_le_bytes());
        put(&mut preimage, &mut at, &header.gas_limit.to_le_bytes());
        debug_assert_eq!(at, preimage.len());

        let mut h = Sha256::new();
        h.update(&preimage[..64]);
        let midstate = h.midstate().expect("64 bytes is a block boundary");
        let mut tail = [0u8; Self::TAIL_LEN];
        tail.copy_from_slice(&preimage[64..]);
        MiningContext {
            midstate,
            tail,
            target: target_for(header.difficulty),
        }
    }

    /// The header hash for `nonce`; bit-identical to [`Header::hash`] with
    /// the nonce installed.
    pub fn hash_with_nonce(&self, nonce: u64) -> H256 {
        let mut tail = self.tail;
        tail[Self::NONCE_AT..Self::NONCE_AT + 8].copy_from_slice(&nonce.to_le_bytes());
        let mut h = Sha256::from_midstate(self.midstate);
        h.update(&tail);
        h.finalize()
    }

    /// Whether `nonce` seals the header.
    pub fn seals(&self, nonce: u64) -> bool {
        self.hash_with_nonce(nonce).meets_target(&self.target)
    }
}

/// Scalar reference nonce search: full header re-hash per attempt. Retained
/// as the ground truth for [`mine`] and [`mine_parallel`]; use those instead.
pub fn mine_reference(header: &mut Header, start: u64, max_attempts: u64) -> Option<u64> {
    for i in 0..max_attempts {
        header.nonce = start.wrapping_add(i);
        if seal_valid(header) {
            return Some(header.nonce);
        }
    }
    None
}

/// Searches nonces from `start` until the header seals, up to `max_attempts`.
/// Returns the winning nonce, leaving it installed in the header.
///
/// Single-threaded but midstate-cached: ~1.5× the nonce throughput of
/// [`mine_reference`] with the same result.
pub fn mine(header: &mut Header, start: u64, max_attempts: u64) -> Option<u64> {
    let ctx = MiningContext::new(header);
    for i in 0..max_attempts {
        let nonce = start.wrapping_add(i);
        if ctx.seals(nonce) {
            header.nonce = nonce;
            return Some(nonce);
        }
    }
    if max_attempts > 0 {
        // Match the scalar reference: the last attempted nonce stays installed.
        header.nonce = start.wrapping_add(max_attempts - 1);
    }
    None
}

/// Like [`mine`] but fans the search across the [`blockfed_compute`] worker
/// pool in ascending nonce blocks. Deterministic: returns the same (lowest)
/// winning nonce as the sequential scan at every thread count.
pub fn mine_parallel(header: &mut Header, start: u64, max_attempts: u64) -> Option<u64> {
    let ctx = MiningContext::new(header);
    let found =
        blockfed_compute::par_find_first(start, max_attempts, 4096, |nonce| ctx.seals(nonce));
    match found {
        Some(nonce) => header.nonce = nonce,
        // Match mine/mine_reference: the last attempted nonce stays
        // installed, so batched callers can resume from header.nonce + 1.
        None if max_attempts > 0 => header.nonce = start.wrapping_add(max_attempts - 1),
        None => {}
    }
    found
}

/// Ethereum-Homestead-flavoured difficulty retarget: move by `parent/2048`
/// toward the target block time, clamped at [`MIN_DIFFICULTY`].
pub fn next_difficulty(parent_difficulty: u128, block_interval_ns: u64) -> u128 {
    let step = (parent_difficulty / 2048).max(1);
    let next = if block_interval_ns < TARGET_BLOCK_TIME_NS {
        parent_difficulty.saturating_add(step)
    } else {
        parent_difficulty.saturating_sub(step)
    };
    next.max(MIN_DIFFICULTY)
}

/// The expected time for a miner hashing at `hashrate` (hashes/second) to seal
/// a block at `difficulty`.
pub fn expected_mining_time(difficulty: u128, hashrate: f64) -> SimDuration {
    assert!(hashrate > 0.0, "hashrate must be positive");
    SimDuration::from_secs_f64(difficulty as f64 / hashrate)
}

/// Samples a mining delay from the exponential model — the simulation-side
/// equivalent of literal hashing.
pub fn sample_mining_delay<R: Rng + ?Sized>(
    difficulty: u128,
    hashrate: f64,
    rng: &mut R,
) -> SimDuration {
    let mean = expected_mining_time(difficulty, hashrate);
    Exponential::from_mean(std::cmp::max(mean, SimDuration::from_nanos(1))).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_crypto::{H160, H256};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn header(difficulty: u128) -> Header {
        Header {
            parent: H256::zero(),
            number: 1,
            timestamp_ns: 0,
            miner: H160::zero(),
            difficulty,
            nonce: 0,
            tx_root: H256::zero(),
            state_root: H256::zero(),
            gas_used: 0,
            gas_limit: 1_000_000,
        }
    }

    #[test]
    fn target_shrinks_with_difficulty() {
        assert!(target_for(2) < target_for(1));
        assert!(target_for(1000) < target_for(2));
    }

    #[test]
    #[should_panic(expected = "difficulty must be positive")]
    fn zero_difficulty_panics() {
        let _ = target_for(0);
    }

    #[test]
    fn difficulty_one_accepts_anything() {
        let mut h = header(1);
        h.nonce = 12345;
        assert!(seal_valid(&h));
    }

    #[test]
    fn literal_mining_finds_valid_nonce() {
        let mut h = header(64);
        let nonce = mine(&mut h, 0, 1_000_000).expect("difficulty 64 should seal quickly");
        assert_eq!(h.nonce, nonce);
        assert!(seal_valid(&h));
        // The sealed hash really is below the target.
        assert!(hash_meets(h.hash(), 64));
    }

    #[test]
    fn mining_respects_attempt_budget() {
        // Astronomically hard: no nonce in 10 attempts.
        let mut h = header(u128::MAX);
        assert_eq!(mine(&mut h, 0, 10), None);
    }

    #[test]
    fn midstate_hash_matches_full_header_hash() {
        let mut h = header(1000);
        h.parent = blockfed_crypto::sha256::sha256(b"parent");
        h.tx_root = blockfed_crypto::sha256::sha256(b"txs");
        h.state_root = blockfed_crypto::sha256::sha256(b"state");
        h.gas_used = 12345;
        h.timestamp_ns = 987654321;
        let ctx = MiningContext::new(&h);
        for nonce in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            h.nonce = nonce;
            assert_eq!(ctx.hash_with_nonce(nonce), h.hash(), "nonce {nonce}");
        }
    }

    #[test]
    fn mine_matches_scalar_reference() {
        for difficulty in [16u128, 64, 256] {
            let mut a = header(difficulty);
            let mut b = header(difficulty);
            let via_ref = mine_reference(&mut a, 7, 1_000_000);
            let via_mid = mine(&mut b, 7, 1_000_000);
            assert_eq!(via_ref, via_mid, "difficulty {difficulty}");
            assert_eq!(a.nonce, b.nonce);
        }
    }

    #[test]
    fn mine_parallel_matches_sequential_at_every_thread_count() {
        for threads in [1usize, 2, 8] {
            blockfed_compute::set_threads(threads);
            let mut a = header(64);
            let mut b = header(64);
            let sequential = mine(&mut a, 0, 1_000_000);
            let parallel = mine_parallel(&mut b, 0, 1_000_000);
            assert_eq!(sequential, parallel, "threads {threads}");
            assert_eq!(a.nonce, b.nonce);
            assert!(seal_valid(&b));
            // Budget exhaustion agrees too, including the resumable
            // last-attempted nonce left in the header.
            let mut c = header(u128::MAX);
            let mut d = header(u128::MAX);
            assert_eq!(mine_parallel(&mut c, 0, 10_000), None);
            assert_eq!(mine(&mut d, 0, 10_000), None);
            assert_eq!(c.nonce, d.nonce);
        }
        blockfed_compute::set_threads(0);
    }

    #[test]
    fn retarget_moves_toward_block_time() {
        let d = 1_000_000u128;
        let faster = next_difficulty(d, TARGET_BLOCK_TIME_NS / 2);
        let slower = next_difficulty(d, TARGET_BLOCK_TIME_NS * 2);
        assert!(faster > d, "quick blocks must raise difficulty");
        assert!(slower < d, "slow blocks must lower difficulty");
    }

    #[test]
    fn retarget_clamps_at_minimum() {
        assert_eq!(
            next_difficulty(MIN_DIFFICULTY, TARGET_BLOCK_TIME_NS * 10),
            MIN_DIFFICULTY
        );
        assert!(next_difficulty(17, TARGET_BLOCK_TIME_NS * 10) >= MIN_DIFFICULTY);
    }

    #[test]
    fn expected_time_scales_linearly() {
        let a = expected_mining_time(1000, 100.0);
        let b = expected_mining_time(2000, 100.0);
        let c = expected_mining_time(1000, 200.0);
        assert_eq!(b.as_secs_f64(), 2.0 * a.as_secs_f64());
        assert_eq!(c.as_secs_f64(), 0.5 * a.as_secs_f64());
    }

    #[test]
    fn sampled_delays_have_the_right_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let total: f64 = (0..n)
            .map(|_| sample_mining_delay(1300, 100.0, &mut rng).as_secs_f64())
            .sum();
        let mean = total / f64::from(n);
        // Expected 13 s.
        assert!((mean - 13.0).abs() < 0.7, "mean {mean}");
    }

    #[test]
    fn simulated_and_literal_agree_on_validity_rate() {
        // At difficulty d, a random hash seals with probability ~1/d. Check the
        // literal path empirically at small d.
        let d = 16u128;
        let mut successes = 0u32;
        let trials = 2000u32;
        for i in 0..trials {
            let mut h = header(d);
            h.nonce = u64::from(i) * 7919;
            if seal_valid(&h) {
                successes += 1;
            }
        }
        let rate = f64::from(successes) / f64::from(trials);
        let expected = 1.0 / d as f64;
        assert!(
            (rate - expected).abs() < expected,
            "seal rate {rate} vs expected {expected}"
        );
    }
}
