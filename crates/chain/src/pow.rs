//! Proof-of-work: targets, difficulty retargeting, literal mining, and the
//! exponential-delay model used by the discrete-event simulation.
//!
//! Both paths honour the same target math: `target = U256::MAX / difficulty`,
//! block valid iff `hash(header) ≤ target`. Literal nonce search is used in
//! tests and micro-benchmarks at low difficulty; experiments sample mining
//! delays from the memoryless distribution `Exp(hashrate / difficulty)` —
//! statistically equivalent and fast.

use blockfed_crypto::{H256, U256};
use blockfed_sim::{Exponential, SimDuration};
use rand::Rng;

use crate::block::Header;

/// Minimum difficulty the retarget rule will descend to.
pub const MIN_DIFFICULTY: u128 = 16;
/// The paper's private-Ethereum block cadence target (~13 s, Ethereum PoW era).
pub const TARGET_BLOCK_TIME_NS: u64 = 13_000_000_000;

/// The proof-of-work target for a difficulty.
///
/// # Panics
///
/// Panics if `difficulty` is zero.
///
/// # Examples
///
/// ```
/// use blockfed_chain::pow::target_for;
/// use blockfed_crypto::U256;
///
/// assert_eq!(target_for(1), U256::MAX);
/// assert!(target_for(2) < U256::MAX);
/// ```
pub fn target_for(difficulty: u128) -> U256 {
    assert!(difficulty > 0, "difficulty must be positive");
    let (q, _) = U256::MAX.div_rem(U256::from_u128(difficulty));
    q
}

/// Whether a sealed header satisfies its own difficulty.
pub fn seal_valid(header: &Header) -> bool {
    hash_meets(header.hash(), header.difficulty)
}

/// Whether `hash` meets `difficulty`'s target.
pub fn hash_meets(hash: H256, difficulty: u128) -> bool {
    hash.meets_target(&target_for(difficulty))
}

/// Searches nonces from `start` until the header seals, up to `max_attempts`.
/// Returns the winning nonce, leaving it installed in the header.
pub fn mine(header: &mut Header, start: u64, max_attempts: u64) -> Option<u64> {
    for i in 0..max_attempts {
        header.nonce = start.wrapping_add(i);
        if seal_valid(header) {
            return Some(header.nonce);
        }
    }
    None
}

/// Ethereum-Homestead-flavoured difficulty retarget: move by `parent/2048`
/// toward the target block time, clamped at [`MIN_DIFFICULTY`].
pub fn next_difficulty(parent_difficulty: u128, block_interval_ns: u64) -> u128 {
    let step = (parent_difficulty / 2048).max(1);
    let next = if block_interval_ns < TARGET_BLOCK_TIME_NS {
        parent_difficulty.saturating_add(step)
    } else {
        parent_difficulty.saturating_sub(step)
    };
    next.max(MIN_DIFFICULTY)
}

/// The expected time for a miner hashing at `hashrate` (hashes/second) to seal
/// a block at `difficulty`.
pub fn expected_mining_time(difficulty: u128, hashrate: f64) -> SimDuration {
    assert!(hashrate > 0.0, "hashrate must be positive");
    SimDuration::from_secs_f64(difficulty as f64 / hashrate)
}

/// Samples a mining delay from the exponential model — the simulation-side
/// equivalent of literal hashing.
pub fn sample_mining_delay<R: Rng + ?Sized>(
    difficulty: u128,
    hashrate: f64,
    rng: &mut R,
) -> SimDuration {
    let mean = expected_mining_time(difficulty, hashrate);
    Exponential::from_mean(std::cmp::max(mean, SimDuration::from_nanos(1))).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_crypto::{H160, H256};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn header(difficulty: u128) -> Header {
        Header {
            parent: H256::zero(),
            number: 1,
            timestamp_ns: 0,
            miner: H160::zero(),
            difficulty,
            nonce: 0,
            tx_root: H256::zero(),
            state_root: H256::zero(),
            gas_used: 0,
            gas_limit: 1_000_000,
        }
    }

    #[test]
    fn target_shrinks_with_difficulty() {
        assert!(target_for(2) < target_for(1));
        assert!(target_for(1000) < target_for(2));
    }

    #[test]
    #[should_panic(expected = "difficulty must be positive")]
    fn zero_difficulty_panics() {
        let _ = target_for(0);
    }

    #[test]
    fn difficulty_one_accepts_anything() {
        let mut h = header(1);
        h.nonce = 12345;
        assert!(seal_valid(&h));
    }

    #[test]
    fn literal_mining_finds_valid_nonce() {
        let mut h = header(64);
        let nonce = mine(&mut h, 0, 1_000_000).expect("difficulty 64 should seal quickly");
        assert_eq!(h.nonce, nonce);
        assert!(seal_valid(&h));
        // The sealed hash really is below the target.
        assert!(hash_meets(h.hash(), 64));
    }

    #[test]
    fn mining_respects_attempt_budget() {
        // Astronomically hard: no nonce in 10 attempts.
        let mut h = header(u128::MAX);
        assert_eq!(mine(&mut h, 0, 10), None);
    }

    #[test]
    fn retarget_moves_toward_block_time() {
        let d = 1_000_000u128;
        let faster = next_difficulty(d, TARGET_BLOCK_TIME_NS / 2);
        let slower = next_difficulty(d, TARGET_BLOCK_TIME_NS * 2);
        assert!(faster > d, "quick blocks must raise difficulty");
        assert!(slower < d, "slow blocks must lower difficulty");
    }

    #[test]
    fn retarget_clamps_at_minimum() {
        assert_eq!(next_difficulty(MIN_DIFFICULTY, TARGET_BLOCK_TIME_NS * 10), MIN_DIFFICULTY);
        assert!(next_difficulty(17, TARGET_BLOCK_TIME_NS * 10) >= MIN_DIFFICULTY);
    }

    #[test]
    fn expected_time_scales_linearly() {
        let a = expected_mining_time(1000, 100.0);
        let b = expected_mining_time(2000, 100.0);
        let c = expected_mining_time(1000, 200.0);
        assert_eq!(b.as_secs_f64(), 2.0 * a.as_secs_f64());
        assert_eq!(c.as_secs_f64(), 0.5 * a.as_secs_f64());
    }

    #[test]
    fn sampled_delays_have_the_right_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let total: f64 = (0..n)
            .map(|_| sample_mining_delay(1300, 100.0, &mut rng).as_secs_f64())
            .sum();
        let mean = total / f64::from(n);
        // Expected 13 s.
        assert!((mean - 13.0).abs() < 0.7, "mean {mean}");
    }

    #[test]
    fn simulated_and_literal_agree_on_validity_rate() {
        // At difficulty d, a random hash seals with probability ~1/d. Check the
        // literal path empirically at small d.
        let d = 16u128;
        let mut successes = 0u32;
        let trials = 2000u32;
        for i in 0..trials {
            let mut h = header(d);
            h.nonce = u64::from(i) * 7919;
            if seal_valid(&h) {
                successes += 1;
            }
        }
        let rate = f64::from(successes) / f64::from(trials);
        let expected = 1.0 / d as f64;
        assert!(
            (rate - expected).abs() < expected,
            "seal rate {rate} vs expected {expected}"
        );
    }
}
