//! Genesis configuration: the paper's private-network bootstrap, where the
//! three peers are pre-funded and the difficulty starts low.

use blockfed_crypto::{H160, H256};
use serde::{Deserialize, Serialize};

use crate::block::{Block, Header};
use crate::gas::DEFAULT_BLOCK_GAS_LIMIT;
use crate::state::State;

/// Parameters of a new chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenesisSpec {
    /// Pre-funded accounts.
    pub alloc: Vec<(H160, u64)>,
    /// Contract code installed at genesis (address, code).
    pub alloc_code: Vec<(H160, Vec<u8>)>,
    /// Starting difficulty.
    pub difficulty: u128,
    /// Block gas limit.
    pub gas_limit: u64,
    /// Genesis timestamp (simulation nanoseconds).
    pub timestamp_ns: u64,
}

impl Default for GenesisSpec {
    fn default() -> Self {
        GenesisSpec {
            alloc: Vec::new(),
            alloc_code: Vec::new(),
            difficulty: 1_000,
            gas_limit: DEFAULT_BLOCK_GAS_LIMIT,
            timestamp_ns: 0,
        }
    }
}

impl GenesisSpec {
    /// A spec pre-funding the given accounts equally.
    pub fn with_accounts(accounts: &[H160], balance: u64) -> Self {
        GenesisSpec {
            alloc: accounts.iter().map(|a| (*a, balance)).collect(),
            ..GenesisSpec::default()
        }
    }

    /// Overrides the starting difficulty (builder style).
    #[must_use]
    pub fn with_difficulty(mut self, difficulty: u128) -> Self {
        self.difficulty = difficulty;
        self
    }

    /// Installs contract code at genesis (builder style).
    #[must_use]
    pub fn with_code(mut self, addr: H160, code: Vec<u8>) -> Self {
        self.alloc_code.push((addr, code));
        self
    }

    /// Builds the genesis block and its state.
    pub fn build(&self) -> (Block, State) {
        let mut state = State::new();
        for (addr, balance) in &self.alloc {
            state.credit(*addr, *balance);
        }
        for (addr, code) in &self.alloc_code {
            state.set_code(*addr, code.clone());
        }
        let header = Header {
            parent: H256::zero(),
            number: 0,
            timestamp_ns: self.timestamp_ns,
            miner: H160::zero(),
            difficulty: self.difficulty,
            nonce: 0,
            tx_root: H256::zero(),
            state_root: state.root(),
            gas_used: 0,
            gas_limit: self.gas_limit,
        };
        (
            Block {
                header,
                transactions: Vec::new(),
            },
            state,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> H160 {
        let mut b = [0u8; 20];
        b[0] = n;
        H160::from_bytes(b)
    }

    #[test]
    fn builds_funded_genesis() {
        let spec = GenesisSpec::with_accounts(&[addr(1), addr(2)], 500);
        let (block, state) = spec.build();
        assert_eq!(block.number(), 0);
        assert!(block.transactions.is_empty());
        assert_eq!(state.balance(&addr(1)), 500);
        assert_eq!(state.balance(&addr(2)), 500);
        assert_eq!(block.header.state_root, state.root());
    }

    #[test]
    fn same_spec_same_genesis_hash() {
        let spec = GenesisSpec::with_accounts(&[addr(1)], 10);
        assert_eq!(spec.build().0.hash(), spec.build().0.hash());
        let different = GenesisSpec::with_accounts(&[addr(1)], 11);
        assert_ne!(spec.build().0.hash(), different.build().0.hash());
    }

    #[test]
    fn difficulty_override() {
        let spec = GenesisSpec::default().with_difficulty(77);
        assert_eq!(spec.build().0.header.difficulty, 77);
    }

    #[test]
    fn genesis_code_allocation() {
        let spec = GenesisSpec::default().with_code(addr(9), vec![1, 2, 3]);
        let (_, state) = spec.build();
        assert_eq!(state.code(&addr(9)), vec![1, 2, 3]);
        assert!(state.account(&addr(9)).is_contract());
    }
}
