//! Transaction and block execution.

use blockfed_crypto::H160;

use crate::gas::intrinsic_gas;
use crate::receipt::{ExecStatus, Receipt};
use crate::runtime::{CallContext, ContractRuntime};
use crate::state::State;
use crate::store::SigCache;
use crate::tx::{contract_address, Transaction};

/// Block-level environment for execution.
#[derive(Debug, Clone, Copy)]
pub struct BlockEnv {
    /// Height of the block being executed.
    pub number: u64,
    /// Block timestamp in simulation nanoseconds.
    pub timestamp_ns: u64,
    /// Address receiving transaction fees.
    pub miner: H160,
    /// Block gas limit.
    pub gas_limit: u64,
}

/// Result of executing a full transaction list.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// State after all transactions.
    pub state: State,
    /// One receipt per transaction, in order.
    pub receipts: Vec<Receipt>,
    /// Total gas consumed by non-invalid transactions.
    pub gas_used: u64,
}

/// Executes one transaction against `state`, returning its receipt.
///
/// Invalid transactions (bad signature, wrong nonce, unaffordable cost,
/// intrinsic gas above the limit) leave the state untouched except for nothing
/// — they produce an [`ExecStatus::Invalid`] receipt with zero gas.
pub fn execute_tx(
    state: &mut State,
    tx: &Transaction,
    env: &BlockEnv,
    runtime: &mut dyn ContractRuntime,
) -> Receipt {
    execute_tx_with(state, tx, env, runtime, &SigCache::disabled())
}

/// [`execute_tx`] with a run-scoped signature-verdict cache, so validators
/// that already verified a gossiped transaction (in a mempool, or on another
/// peer's chain sharing the same [`crate::ChainStore`]) skip the Schnorr
/// check.
pub fn execute_tx_with(
    state: &mut State,
    tx: &Transaction,
    env: &BlockEnv,
    runtime: &mut dyn ContractRuntime,
    sig: &SigCache,
) -> Receipt {
    let tx_hash = tx.hash();
    let invalid = |_reason: &str| Receipt {
        tx_hash,
        status: ExecStatus::Invalid,
        gas_used: 0,
        output: Vec::new(),
        logs: Vec::new(),
    };

    if tx.verify_signature_with(sig).is_err() {
        return invalid("signature");
    }
    let intrinsic = intrinsic_gas(tx);
    if intrinsic > tx.gas_limit {
        return invalid("intrinsic gas exceeds limit");
    }
    // Affordability: worst-case gas plus transferred value.
    let max_cost = tx
        .gas_limit
        .saturating_mul(tx.gas_price)
        .saturating_add(tx.value);
    if state.balance(&tx.from) < max_cost {
        return invalid("unaffordable");
    }
    if state.consume_nonce(tx.from, tx.nonce).is_err() {
        return invalid("nonce");
    }

    let mut gas_used = intrinsic;
    let mut output = Vec::new();
    let mut logs = Vec::new();
    let mut status = ExecStatus::Success;

    match &tx.to {
        None => {
            // Deployment: calldata becomes the contract code.
            let addr = contract_address(tx.from, tx.nonce);
            state.set_code(addr, tx.data.clone());
            if tx.value > 0 {
                state
                    .transfer(tx.from, addr, tx.value)
                    .expect("affordability pre-checked");
            }
            output = addr.as_bytes().to_vec();
        }
        Some(to) => {
            let code = state.code(to);
            // Snapshot covers the value transfer and all contract effects but
            // not the nonce bump: a reverted call still burns the nonce.
            let snapshot = if code.is_empty() {
                None
            } else {
                Some(state.clone())
            };
            if tx.value > 0 {
                state
                    .transfer(tx.from, *to, tx.value)
                    .expect("affordability pre-checked");
            }
            if !code.is_empty() {
                let ctx = CallContext {
                    caller: tx.from,
                    contract: *to,
                    calldata: tx.data.clone(),
                    gas_budget: tx.gas_limit - intrinsic,
                    block_number: env.number,
                    timestamp_ns: env.timestamp_ns,
                };
                let outcome = runtime.execute(&ctx, &code, state);
                gas_used = gas_used.saturating_add(outcome.gas_used).min(tx.gas_limit);
                output = outcome.output;
                if outcome.success {
                    logs = outcome.logs;
                } else {
                    *state = snapshot.expect("snapshot exists for contract calls");
                    status = ExecStatus::Reverted;
                }
            }
        }
    }

    // Fee: gas_used * price moves from sender to miner.
    let fee = gas_used.saturating_mul(tx.gas_price);
    state
        .debit(tx.from, fee)
        .expect("affordability pre-checked");
    state.credit(env.miner, fee);

    Receipt {
        tx_hash,
        status,
        gas_used,
        output,
        logs,
    }
}

/// Executes a transaction list on a copy of `parent_state`.
///
/// Transactions that would push the block past its gas limit are marked
/// invalid (a real miner would simply not include them; a validator treats
/// their inclusion as a no-op with zero gas).
pub fn execute_block_txs(
    parent_state: &State,
    txs: &[Transaction],
    env: &BlockEnv,
    runtime: &mut dyn ContractRuntime,
) -> ExecutionResult {
    execute_block_txs_with(parent_state, txs, env, runtime, &SigCache::disabled())
}

/// [`execute_block_txs`] with a run-scoped signature-verdict cache (see
/// [`execute_tx_with`]).
pub fn execute_block_txs_with(
    parent_state: &State,
    txs: &[Transaction],
    env: &BlockEnv,
    runtime: &mut dyn ContractRuntime,
    sig: &SigCache,
) -> ExecutionResult {
    let mut state = parent_state.clone();
    let mut receipts = Vec::with_capacity(txs.len());
    let mut gas_used = 0u64;
    for tx in txs {
        if gas_used.saturating_add(intrinsic_gas(tx)) > env.gas_limit {
            receipts.push(Receipt {
                tx_hash: tx.hash(),
                status: ExecStatus::Invalid,
                gas_used: 0,
                output: Vec::new(),
                logs: Vec::new(),
            });
            continue;
        }
        let receipt = execute_tx_with(&mut state, tx, env, runtime, sig);
        gas_used += receipt.gas_used;
        receipts.push(receipt);
    }
    ExecutionResult {
        state,
        receipts,
        gas_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gas::TX_BASE_GAS;
    use crate::runtime::NullRuntime;
    use blockfed_crypto::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    fn env() -> BlockEnv {
        let mut miner = [0u8; 20];
        miner[19] = 0xAA;
        BlockEnv {
            number: 1,
            timestamp_ns: 1,
            miner: H160::from_bytes(miner),
            gas_limit: 10_000_000,
        }
    }

    fn funded_state(k: &KeyPair, amount: u64) -> State {
        let mut s = State::new();
        s.credit(k.address(), amount);
        s
    }

    #[test]
    fn successful_transfer_pays_fee_to_miner() {
        let k = key(1);
        let recipient = key(2).address();
        let mut state = funded_state(&k, 1_000_000);
        let tx = Transaction::transfer(k.address(), recipient, 100, 0).signed(&k);
        let env = env();
        let r = execute_tx(&mut state, &tx, &env, &mut NullRuntime);
        assert_eq!(r.status, ExecStatus::Success);
        assert_eq!(r.gas_used, TX_BASE_GAS);
        assert_eq!(state.balance(&recipient), 100);
        assert_eq!(state.balance(&env.miner), TX_BASE_GAS); // gas_price = 1
        assert_eq!(state.balance(&k.address()), 1_000_000 - 100 - TX_BASE_GAS);
        assert_eq!(state.nonce(&k.address()), 1);
    }

    #[test]
    fn unsigned_tx_is_invalid_and_free() {
        let k = key(3);
        let mut state = funded_state(&k, 1_000_000);
        let before = state.clone();
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0);
        let r = execute_tx(&mut state, &tx, &env(), &mut NullRuntime);
        assert_eq!(r.status, ExecStatus::Invalid);
        assert_eq!(state, before);
    }

    #[test]
    fn wrong_nonce_rejected() {
        let k = key(4);
        let mut state = funded_state(&k, 1_000_000);
        let tx = Transaction::transfer(k.address(), k.address(), 1, 5).signed(&k);
        let r = execute_tx(&mut state, &tx, &env(), &mut NullRuntime);
        assert_eq!(r.status, ExecStatus::Invalid);
        assert_eq!(state.nonce(&k.address()), 0);
    }

    #[test]
    fn unaffordable_tx_rejected_before_any_mutation() {
        let k = key(5);
        let mut state = funded_state(&k, 10); // cannot afford 21000 gas
        let before = state.clone();
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0).signed(&k);
        let r = execute_tx(&mut state, &tx, &env(), &mut NullRuntime);
        assert_eq!(r.status, ExecStatus::Invalid);
        assert_eq!(state, before);
    }

    #[test]
    fn deployment_installs_code_at_derived_address() {
        let k = key(6);
        let mut state = funded_state(&k, 100_000_000);
        let tx = Transaction::deploy(k.address(), vec![0xAB, 0xCD], 0).signed(&k);
        let r = execute_tx(&mut state, &tx, &env(), &mut NullRuntime);
        assert_eq!(r.status, ExecStatus::Success);
        let addr = contract_address(k.address(), 0);
        assert_eq!(state.code(&addr), vec![0xAB, 0xCD]);
        assert_eq!(r.output, addr.as_bytes().to_vec());
    }

    struct RevertingRuntime;
    impl ContractRuntime for RevertingRuntime {
        fn execution_fingerprint(&self) -> u64 {
            u64::MAX // always-revert semantics: never share with anything else
        }
        fn execute(
            &mut self,
            _c: &CallContext,
            _code: &[u8],
            state: &mut State,
        ) -> crate::runtime::ExecOutcome {
            // Scribble on state, then revert.
            state.credit(H160::zero(), 999_999);
            crate::runtime::ExecOutcome::reverted(5_000)
        }
    }

    #[test]
    fn reverted_call_rolls_back_state_but_charges_gas() {
        let deployer = key(7);
        let caller = key(8);
        let mut state = State::new();
        state.credit(deployer.address(), 100_000_000);
        state.credit(caller.address(), 100_000_000);
        let env = env();
        // Deploy a contract.
        let deploy = Transaction::deploy(deployer.address(), vec![1], 0).signed(&deployer);
        execute_tx(&mut state, &deploy, &env, &mut NullRuntime);
        let contract = contract_address(deployer.address(), 0);

        let call = Transaction::call(caller.address(), contract, vec![], 0).signed(&caller);
        let r = execute_tx(&mut state, &call, &env, &mut RevertingRuntime);
        assert_eq!(r.status, ExecStatus::Reverted);
        assert_eq!(
            state.balance(&H160::zero()),
            0,
            "scribbles must be rolled back"
        );
        assert_eq!(r.gas_used, TX_BASE_GAS + 5_000);
        assert_eq!(
            state.nonce(&caller.address()),
            1,
            "nonce burned despite revert"
        );
        // Miner collected the deploy fee (base + 1 nonzero byte + create) plus
        // the reverted call's fee (base + 5 000 execution gas).
        let deploy_fee = TX_BASE_GAS + crate::gas::DATA_NONZERO_GAS + crate::gas::CREATE_GAS;
        assert_eq!(state.balance(&env.miner), deploy_fee + TX_BASE_GAS + 5_000);
    }

    #[test]
    fn block_execution_respects_gas_limit() {
        let k = key(9);
        let mut state = State::new();
        state.credit(k.address(), 100_000_000);
        let txs: Vec<Transaction> = (0..5)
            .map(|n| Transaction::transfer(k.address(), k.address(), 1, n).signed(&k))
            .collect();
        let env = BlockEnv {
            gas_limit: TX_BASE_GAS * 2,
            ..env()
        };
        let result = execute_block_txs(&state, &txs, &env, &mut NullRuntime);
        let ok = result.receipts.iter().filter(|r| r.is_success()).count();
        assert_eq!(ok, 2, "only two transfers fit the block");
        assert_eq!(result.gas_used, TX_BASE_GAS * 2);
        // Skipped transactions must still have receipts.
        assert_eq!(result.receipts.len(), 5);
    }

    #[test]
    fn block_execution_does_not_mutate_parent_state() {
        let k = key(10);
        let mut parent = State::new();
        parent.credit(k.address(), 1_000_000);
        let snapshot = parent.clone();
        let tx = Transaction::transfer(k.address(), k.address(), 1, 0).signed(&k);
        let _ = execute_block_txs(&parent, &[tx], &env(), &mut NullRuntime);
        assert_eq!(parent, snapshot);
    }
}
