//! An Ethereum-style proof-of-work blockchain substrate, built from scratch for
//! the `blockfed` reproduction.
//!
//! The paper deploys its federated-learning system on a private Ethereum
//! network (Geth, PoW). This crate reproduces the pieces that experiment
//! actually exercises: signed transactions with gas accounting (including the
//! "transaction size exceeds the model size" payload metering), PoW with
//! difficulty retargeting, mempools, full block validation with re-execution,
//! and total-difficulty fork choice with reorg support. Contract execution is
//! delegated through [`runtime::ContractRuntime`] so `blockfed-vm` can plug in
//! both a bytecode VM and the native federated-learning registry.
//!
//! # Examples
//!
//! ```
//! use blockfed_chain::{Blockchain, GenesisSpec, NullRuntime, Transaction};
//! use blockfed_chain::pow::mine;
//! use blockfed_crypto::KeyPair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let key = KeyPair::generate(&mut rng);
//! let spec = GenesisSpec::with_accounts(&[key.address()], 1_000_000).with_difficulty(16);
//! let mut chain = Blockchain::new(&spec);
//! let tx = Transaction::transfer(key.address(), key.address(), 1, 0).signed(&key);
//! let mut block = chain.build_candidate(key.address(), vec![tx], 1_000, &mut NullRuntime);
//! mine(&mut block.header, 0, u64::MAX).unwrap();
//! chain.import(block, &mut NullRuntime).unwrap();
//! assert_eq!(chain.height(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod chain;
pub mod executor;
pub mod gas;
pub mod genesis;
pub mod mempool;
pub mod pow;
pub mod receipt;
pub mod retarget;
pub mod runtime;
pub mod state;
pub mod store;
pub mod tx;

pub use block::{Block, Header};
pub use chain::{Blockchain, ImportError, ImportOutcome, SealPolicy};
pub use executor::{
    execute_block_txs, execute_block_txs_with, execute_tx, execute_tx_with, BlockEnv,
    ExecutionResult,
};
pub use genesis::GenesisSpec;
pub use mempool::{Mempool, MempoolError};
pub use receipt::{ExecStatus, LogEntry, Receipt};
pub use retarget::{simulate_cadence, DifficultyController, RetargetRule};
pub use runtime::{CallContext, ContractRuntime, ExecOutcome, NullRuntime};
pub use state::{Account, State, StateDelta, StateError};
pub use store::{ChainStore, SigCache, StoreCounters, StoreLimits};
pub use tx::{contract_address, Transaction, TxError};
