//! # blockfed
//!
//! A fully coupled **blockchain-based federated learning** system — an
//! open-source reproduction of *"Wait or Not to Wait: Evaluating Trade-Offs
//! between Speed and Precision in Blockchain-based Federated Aggregation"*
//! (ICDCS 2024).
//!
//! Every participant is simultaneously a trainer, an aggregator, and a
//! blockchain peer. Local models travel as signed transactions on a private
//! Ethereum-style proof-of-work chain; each peer customizes its own
//! aggregation by evaluating model *combinations* on its own test data, and
//! may aggregate *asynchronously* — without waiting for every peer — trading
//! a little precision for speed.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`compute`] | `blockfed-compute` | scoped-thread parallel compute layer (`BLOCKFED_THREADS`) |
//! | [`sim`] | `blockfed-sim` | deterministic discrete-event kernel |
//! | [`crypto`] | `blockfed-crypto` | SHA-256, secp256k1 Schnorr, merkle trees |
//! | [`chain`] | `blockfed-chain` | PoW blockchain (blocks, gas, mempool, forks) |
//! | [`vm`] | `blockfed-vm` | MiniVM + the FL registry contract |
//! | [`net`] | `blockfed-net` | p2p latency/bandwidth/loss simulation |
//! | [`tensor`] | `blockfed-tensor` | dense f32 tensor math |
//! | [`nn`] | `blockfed-nn` | layers, SGD, the SimpleNN / Efficient-B0 zoo |
//! | [`data`] | `blockfed-data` | SynthCifar + federated partitioning |
//! | [`fl`] | `blockfed-fl` | FedAvg, strategies (incl. best-k), robust rules, attacks, FedAsync |
//! | [`core`] | `blockfed-core` | the fully coupled decentralized system |
//! | [`scenario`] | `blockfed-scenario` | declarative N-peer scenarios: churn, partitions, parallel matrices |
//! | [`telemetry`] | `blockfed-telemetry` | deterministic spans/events, metric folding, trace exporters |
//! | [`report`] | `blockfed-report` | tables, CSV, terminal figures |
//!
//! # Quickstart
//!
//! ```
//! use blockfed::data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
//! use blockfed::fl::{Strategy, VanillaFl, VanillaFlConfig};
//! use blockfed::nn::SimpleNnConfig;
//! use rand::SeedableRng;
//!
//! // A tiny 3-client federated run.
//! let gen = SynthCifar::new(SynthCifarConfig::tiny());
//! let (train, test) = gen.generate(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let shards = partition_dataset(&train, 3, Partition::DirichletLabelSkew { alpha: 0.8 }, &mut rng);
//! let tests = vec![test.clone(), test.clone(), test.clone()];
//! let config = VanillaFlConfig { rounds: 2, local_epochs: 1, ..Default::default() };
//! let driver = VanillaFl::new(config, &shards, &tests, &test);
//! let nn = SimpleNnConfig::tiny(test.feature_dim(), test.num_classes());
//! let mut arch_rng = rand::rngs::StdRng::seed_from_u64(2);
//! let run = driver.run(&mut || nn.build(&mut arch_rng), &mut rng);
//! assert_eq!(run.records.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use blockfed_chain as chain;
pub use blockfed_compute as compute;
pub use blockfed_core as core;
pub use blockfed_crypto as crypto;
pub use blockfed_data as data;
pub use blockfed_fl as fl;
pub use blockfed_net as net;
pub use blockfed_nn as nn;
pub use blockfed_report as report;
pub use blockfed_scenario as scenario;
pub use blockfed_sim as sim;
pub use blockfed_telemetry as telemetry;
pub use blockfed_tensor as tensor;
pub use blockfed_vm as vm;
