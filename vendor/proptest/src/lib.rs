//! Offline shim for `proptest`.
//!
//! Provides the macro-and-strategy surface the workspace's property tests
//! use: the [`proptest!`] item macro, `prop_assert*` / [`prop_assume!`],
//! range and [`any`] strategies, `prop::collection::vec`,
//! `prop::array::uniform4`, and [`Strategy::prop_map`]. Unlike real proptest
//! there is no shrinking — failing cases report their case index and message;
//! reproduce by rerunning the (fully deterministic) test.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

use rand::distributions::uniform::SampleUniform;
use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG construction.
pub mod test_runner {
    use super::*;

    /// Derives a deterministic generator from a test name.
    pub fn rng_for(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Strategy over a type's full natural distribution (see [`any`]).
pub struct Any<T> {
    _phantom: PhantomData<T>,
}

/// Generates arbitrary values of `T` (uniform over the whole domain for
/// integers).
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any {
        _phantom: PhantomData,
    }
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.sample(Standard)
    }
}

/// Nested strategy modules mirroring proptest's `prop::` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Length specification for [`vec`]: a fixed size or a half-open
        /// range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy producing `Vec`s of `element` with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Array strategies.
    pub mod array {
        use super::super::*;

        /// Strategy producing `[T; 4]` from four independent draws.
        pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
            Uniform4 { element }
        }

        /// The strategy returned by [`uniform4`].
        pub struct Uniform4<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for Uniform4<S> {
            type Value = [S::Value; 4];
            fn generate(&self, rng: &mut StdRng) -> [S::Value; 4] {
                [
                    self.element.generate(rng),
                    self.element.generate(rng),
                    self.element.generate(rng),
                    self.element.generate(rng),
                ]
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {}: case {}/{} failed: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let lhs = $a;
        let rhs = $b;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let lhs = $a;
        let rhs = $b;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?} == {:?}`",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let lhs = $a;
        let rhs = $b;
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let lhs = $a;
        let rhs = $b;
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?} != {:?}`",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u64, u64)> {
        prop::array::uniform4(any::<u32>()).prop_map(|[a, b, c, d]| {
            (
                (u64::from(a) << 32) | u64::from(b),
                u64::from(c) + u64::from(d),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f32..2.0, z in 1u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {}", y);
            prop_assert!((1..=5).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_spec(v in prop::collection::vec(any::<u8>(), 0..16), w in prop::collection::vec(0i32..5, 4)) {
            prop_assert!(v.len() < 16);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn map_and_assume_work(p in pair_strategy()) {
            prop_assume!(p.1 != 0);
            prop_assert_ne!(p.1, 0, "assume should have filtered zero");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = prop::collection::vec(any::<u64>(), 0..8);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
