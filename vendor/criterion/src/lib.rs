//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the slice of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `iter_batched`, `black_box`) with a simple wall-clock measurer: per
//! benchmark it warms up briefly, then runs timed batches and reports the
//! mean, minimum, and maximum time per iteration on stdout.
//!
//! Two environment knobs tune total runtime:
//! * `BENCH_WARMUP_MS` — warm-up budget per benchmark (default 100).
//! * `BENCH_MEASURE_MS` — measurement budget per benchmark (default 400).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(name: &str, default: u64) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default))
}

/// How `iter_batched` amortizes setup cost. The shim measures per-invocation
/// either way; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the budget elapses, tracking cost per call.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Pick a batch size so each timed sample is ≥ ~1 ms of work.
        let batch = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || self.samples_ns.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || self.samples_ns.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (the shim sizes samples by time budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            warmup: self.criterion.warmup,
            measure: self.criterion.measure,
        };
        f(&mut bencher);
        if bencher.samples_ns.is_empty() {
            println!("{full:<44} (no samples)");
            return self;
        }
        let n = bencher.samples_ns.len() as f64;
        let mean = bencher.samples_ns.iter().sum::<f64>() / n;
        let min = bencher
            .samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = bencher.samples_ns.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{full:<44} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI arg (as passed by `cargo bench -- <filter>`)
        // filters benchmarks by substring, like real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            warmup: env_ms("BENCH_WARMUP_MS", 100),
            measure: env_ms("BENCH_MEASURE_MS", 400),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may execute bench binaries with --test; criterion
            // proper skips measurement there and so do we.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
