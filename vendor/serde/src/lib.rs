//! Offline shim for the `serde` facade.
//!
//! The workspace builds without network access and never serializes through
//! serde at runtime — wire formats are hand-rolled (`blockfed_nn::serialize`,
//! the report CSV writers). The seed code still tags types with
//! `#[derive(Serialize, Deserialize)]` so a future swap to the real `serde`
//! is a one-line Cargo change; here the traits are markers with blanket
//! implementations and the derives expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
