//! Offline shim for `parking_lot`: non-poisoning `Mutex`/`RwLock` wrappers
//! over the `std::sync` primitives, exposing the guard-returning (never
//! `Result`) locking API the tests rely on.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning (parking_lot semantics:
    /// panicking while holding the lock does not poison it for others).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
