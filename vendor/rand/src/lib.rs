//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! This workspace builds in environments without network access, so the small
//! slice of `rand` the codebase uses is vendored here: [`Rng`]/[`RngCore`],
//! [`SeedableRng`], [`rngs::StdRng`], [`rngs::mock::StepRng`], and the
//! [`distributions::Standard`] distribution. The generator behind `StdRng` is
//! xoshiro256** seeded via SplitMix64 — deterministic, fast, and of more than
//! sufficient statistical quality for the simulation workloads here. It does
//! **not** reproduce the upstream `StdRng` (ChaCha12) byte stream; all
//! in-repo determinism tests derive expectations from this generator.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of a [`Standard`]-distributed type.
    ///
    /// [`Standard`]: distributions::Standard
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns a random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    /// Samples `distr` once.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Converts the generator into an iterator of samples from `distr`.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _phantom: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// A generator yielding an arithmetic progression of `u64`s.
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Starts at `value`, advancing by `increment` per call.
            pub fn new(value: u64, increment: u64) -> Self {
                StepRng { value, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

pub mod distributions {
    //! Distributions over random values.

    use super::{Rng, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform over all values for
    /// integers, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Standard;

    /// Iterator over repeated samples, returned by [`Rng::sample_iter`].
    ///
    /// [`Rng::sample_iter`]: crate::Rng::sample_iter
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _phantom: core::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    macro_rules! standard_int {
        ($($t:ty => $via:ident),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    standard_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
        usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64,
    );

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
            let wide: u128 = Distribution::<u128>::sample(&Standard, rng);
            wide as i128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 high bits -> uniform in [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub mod uniform {
        //! Uniform sampling over ranges.

        use core::ops::{Range, RangeInclusive};

        use crate::distributions::{Distribution, Standard};
        use crate::Rng;

        /// A type that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Draws uniformly from `[low, high)`.
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Draws uniformly from `[low, high]`.
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        /// A range usable with [`Rng::gen_range`].
        ///
        /// [`Rng::gen_range`]: crate::Rng::gen_range
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                T::sample_inclusive(lo, hi, rng)
            }
        }

        macro_rules! uniform_int {
            ($($t:ty as $wide:ty),* $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        let span = (high as $wide).wrapping_sub(low as $wide);
                        let draw: $wide = Standard.sample(rng);
                        low.wrapping_add((draw % span) as $t)
                    }
                    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                        let draw: $wide = Standard.sample(rng);
                        if span == 0 {
                            // Full domain.
                            return draw as $t;
                        }
                        low.wrapping_add((draw % span) as $t)
                    }
                }
            )*};
        }
        uniform_int!(
            u8 as u64,
            u16 as u64,
            u32 as u64,
            u64 as u64,
            usize as u64,
            i8 as u64,
            i16 as u64,
            i32 as u64,
            i64 as u64,
            isize as u64,
            u128 as u128,
            i128 as u128,
        );

        impl SampleUniform for f32 {
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let u: f32 = Standard.sample(rng);
                let v = low + u * (high - low);
                if v >= high {
                    high - (high - low) * f32::EPSILON
                } else {
                    v
                }
            }
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let u: f32 = Standard.sample(rng);
                low + u * (high - low)
            }
        }

        impl SampleUniform for f64 {
            fn sample_half_open<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let u: f64 = Standard.sample(rng);
                let v = low + u * (high - low);
                if v >= high {
                    high - (high - low) * f64::EPSILON
                } else {
                    v
                }
            }
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let u: f64 = Standard.sample(rng);
                low + u * (high - low)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: u64 = rng.gen_range(0..=5);
            assert!(z <= 5);
            let w: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&w));
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0f64;
        let n = 100_000;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(10, 5);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 15);
    }

    #[test]
    fn sample_iter_consumes_rng() {
        use crate::distributions::Standard;
        let xs: Vec<u64> = StdRng::seed_from_u64(9)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let ys: Vec<u64> = StdRng::seed_from_u64(9)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.len(), 4);
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_generic(&mut rng);
        let r: &mut dyn RngCore = &mut rng;
        let _ = r.next_u64();
    }
}
