//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits carry blanket implementations,
//! so the derives only need to exist for `#[derive(Serialize, Deserialize)]`
//! attributes to parse; they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
