//! Offline shim for `crossbeam`, providing the `channel` module subset the
//! concurrency tests use: an unbounded MPMC channel with cloneable senders
//! *and* receivers, built on a mutex-guarded queue and condition variable.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        available: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with no message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().expect("channel lock");
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks.
        ///
        /// # Errors
        ///
        /// Unbounded sends only fail if the allocator does, so this always
        /// returns `Ok`; the `Result` mirrors crossbeam's signature.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.shared
                .queue
                .lock()
                .expect("channel lock")
                .items
                .push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message if one is ready.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when the queue is empty but senders remain;
        /// [`TryRecvError::Disconnected`] once drained with no senders left.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().expect("channel lock");
            match inner.items.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks for a message until `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline,
        /// [`RecvTimeoutError::Disconnected`] once drained with no senders.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = inner.items.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .available
                    .wait_timeout(inner, deadline - now)
                    .expect("channel lock");
                inner = guard;
                if result.timed_out() && inner.items.is_empty() {
                    return if inner.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || {
                tx2.send(1).unwrap();
                tx2.send(2).unwrap();
            });
            h.join().unwrap();
            tx.send(3).unwrap();
            let mut got = vec![
                rx.recv_timeout(Duration::from_secs(1)).unwrap(),
                rx2.recv_timeout(Duration::from_secs(1)).unwrap(),
                rx.try_recv().unwrap(),
            ];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_reported_after_drain() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_when_no_message() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
