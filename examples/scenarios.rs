//! The scenario engine, end to end.
//!
//! ```text
//! cargo run --release --example scenarios            # 10-peer churn demo
//! cargo run --release --example scenarios -- --smoke # CI: tiny 5-peer churn+partition matrix
//! cargo run --release --example scenarios -- --bestk # best-k vs consider wall-clock sweep
//! ```
//!
//! Every mode prints the matrix table and writes the machine-readable
//! `BENCH_scenarios.json` (per-cell wall-clock + accuracy) to the working
//! directory, seeding the repo's perf trajectory.

use blockfed::fl::{Strategy, WaitPolicy};
use blockfed::scenario::{ScenarioMatrix, ScenarioRunner, ScenarioSpec};

/// A small, fully featured churn scenario: heterogeneous compute, one
/// mid-run partition + heal, a late join and an early leave.
fn churn_spec(peers: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("churn", peers)
        .rounds(2)
        .consider_cutover(6, 3)
        .partition_at(3.0, &[0], &[1, 2])
        .heal_at(8.0)
        .join_at(10.0, peers - 1)
        .leave_at(14.0, 1);
    for (i, c) in spec.computes.iter_mut().enumerate() {
        c.train_rate = 700.0 - 40.0 * i as f64; // fast head, straggling tail
    }
    spec
}

fn smoke() {
    println!("scenario smoke — 5-peer churn + partition matrix\n");
    let matrix = ScenarioMatrix::new(churn_spec(5))
        .vary_wait(&[WaitPolicy::All, WaitPolicy::FirstK(3)])
        .vary_seed(&[1, 2]);
    let runner = ScenarioRunner::new();
    let report = runner.run_matrix(&matrix);
    println!("{}", report.table());
    assert_eq!(report.cells.len(), 4, "smoke matrix must expand to 4 cells");
    for cell in &report.cells {
        assert!(cell.records > 0, "cell {} never aggregated", cell.name);
        assert!(
            cell.mean_final_accuracy > 0.0,
            "cell {} learned nothing",
            cell.name
        );
    }
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("scenario smoke OK");
}

fn bestk() {
    println!("best-k vs consider — wall-clock of the aggregation search\n");
    let runner = ScenarioRunner::new();

    // The linear-cost path scales to peer counts where the exponential
    // search is unthinkable: force each strategy explicitly (no cutover).
    let bestk = ScenarioMatrix::new(
        ScenarioSpec::new("bestk-sweep", 3)
            .rounds(2)
            .strategy(Strategy::BestK(3)),
    )
    .vary_peers(&[3, 5, 10, 15, 20]);
    let bestk_report = runner.run_matrix(&bestk);
    println!("{}", bestk_report.table());

    // The exponential search is only run where it terminates in reasonable
    // time; at N = 20 it would evaluate 2^20 − 1 combinations per peer
    // per round.
    let consider = ScenarioMatrix::new(
        ScenarioSpec::new("consider-sweep", 3)
            .rounds(2)
            .strategy(Strategy::Consider)
            .consider_cutover(32, 3), // explicitly disable the cutover
    )
    .vary_peers(&[3, 5, 10, 15]);
    let consider_report = runner.run_matrix(&consider);
    println!("{}", consider_report.table());

    // Merge both sweeps into the JSON feed.
    let mut merged = bestk_report.clone();
    merged.name = "bestk-vs-consider".into();
    merged.cells.extend(consider_report.cells);
    let path = merged.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
}

fn demo() {
    println!("10-peer heterogeneous churn scenario — deterministic replay\n");
    let spec = churn_spec(10).named("demo-10-peer-churn").seed(33);
    let runner = ScenarioRunner::new();
    let a = runner.run(&spec);
    let b = runner.run(&spec);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let report = blockfed::scenario::ScenarioReport {
        name: spec.name.clone(),
        cells: vec![a],
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("replayed bit-identically from seed {}", spec.seed);
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "--smoke" => smoke(),
        "--bestk" => bestk(),
        "" | "--demo" => demo(),
        other => {
            eprintln!("unknown mode {other}; use --smoke, --bestk, or --demo");
            std::process::exit(2);
        }
    }
}
