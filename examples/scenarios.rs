//! The scenario engine, end to end.
//!
//! ```text
//! cargo run --release --example scenarios              # 10-peer churn demo
//! cargo run --release --example scenarios -- --smoke   # CI: tiny 5-peer churn+partition matrix
//! cargo run --release --example scenarios -- --bestk   # best-k vs consider wall-clock sweep (incl. n=48)
//! cargo run --release --example scenarios -- --bestk48 # CI: one 48-peer best-k cell past the u32 mask
//! cargo run --release --example scenarios -- --paper   # CI: paper-scale SimpleNN cell, batch-parallel vs sequential
//! ```
//!
//! Every mode prints the matrix table and writes the machine-readable
//! `BENCH_scenarios.json` (per-cell wall-clock + accuracy) to the working
//! directory, seeding the repo's perf trajectory.

use blockfed::fl::{Strategy, WaitPolicy};
use blockfed::scenario::{DataSpec, ScenarioMatrix, ScenarioRunner, ScenarioSpec};

/// A small, fully featured churn scenario: heterogeneous compute, one
/// mid-run partition + heal, a late join and an early leave.
fn churn_spec(peers: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("churn", peers)
        .rounds(2)
        .consider_cutover(6, 3)
        .partition_at(3.0, &[0], &[1, 2])
        .heal_at(8.0)
        .join_at(10.0, peers - 1)
        .leave_at(14.0, 1);
    for (i, c) in spec.computes.iter_mut().enumerate() {
        c.train_rate = 700.0 - 40.0 * i as f64; // fast head, straggling tail
    }
    spec
}

fn smoke() {
    println!("scenario smoke — 5-peer churn + partition matrix\n");
    let matrix = ScenarioMatrix::new(churn_spec(5))
        .vary_wait(&[WaitPolicy::All, WaitPolicy::FirstK(3)])
        .vary_seed(&[1, 2]);
    let runner = ScenarioRunner::new();
    let report = runner.run_matrix(&matrix);
    println!("{}", report.table());
    assert_eq!(report.cells.len(), 4, "smoke matrix must expand to 4 cells");
    for cell in &report.cells {
        assert!(cell.records > 0, "cell {} never aggregated", cell.name);
        assert!(
            cell.mean_final_accuracy > 0.0,
            "cell {} learned nothing",
            cell.name
        );
    }
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("scenario smoke OK");
}

/// The 48-peer best-k cell: past the old 32-peer (u32 combo-mask) ceiling, a
/// requested `Consider` forced through the cutover onto `BestK(40)` so the
/// linear arm runs and every recorded aggregate's mask spans bits ≥ 32.
fn bestk48_spec() -> ScenarioSpec {
    ScenarioSpec::new("bestk48", 48)
        .rounds(2)
        .consider_cutover(6, 40)
        .data(DataSpec::scaled_for(48))
        .seed(48)
}

fn bestk() {
    println!("best-k vs consider — wall-clock of the aggregation search\n");
    let runner = ScenarioRunner::new();
    // Both sweeps share the same 48-peer-capable datasets so their
    // wall-clocks compare apples to apples at every N.
    let data = DataSpec::scaled_for(48);

    // The linear-cost path scales to peer counts where the exponential
    // search is unthinkable — including 48 peers, past the old u32
    // combo-mask ceiling: force each strategy explicitly (no cutover).
    let bestk = ScenarioMatrix::new(
        ScenarioSpec::new("bestk-sweep", 3)
            .rounds(2)
            .strategy(Strategy::BestK(3))
            .data(data.clone()),
    )
    .vary_peers_default();
    let bestk_report = runner.run_matrix(&bestk);
    println!("{}", bestk_report.table());

    // The exponential search is only run where it terminates in reasonable
    // time; at N = 20 it would evaluate 2^20 − 1 combinations per peer
    // per round.
    let consider = ScenarioMatrix::new(
        ScenarioSpec::new("consider-sweep", 3)
            .rounds(2)
            .strategy(Strategy::Consider)
            .consider_cutover(32, 3) // explicitly disable the cutover
            .data(data),
    )
    .vary_peers(&[3, 5, 10, 15]);
    let consider_report = runner.run_matrix(&consider);
    println!("{}", consider_report.table());

    // Plus the wide-mask certification cell.
    let wide = runner.run(&bestk48_spec());
    assert!(
        wide.max_mask_bit.unwrap_or(0) >= 32,
        "48-peer cell never recorded a >32-bit mask: {wide:?}"
    );

    // The paper-scale cell, batch-parallel and sequential: identical
    // simulations (the equality below), so the wall-clock delta between the
    // two rows is exactly what batch-parallel training buys (or, on one
    // core, its shard overhead).
    let paper_par = runner.run(&paper_spec(true));
    let paper_seq = runner.run(&paper_spec(false));
    assert_eq!(
        paper_par.mean_final_accuracy, paper_seq.mean_final_accuracy,
        "batch-parallel training changed the simulation"
    );

    // Merge everything into the JSON feed.
    let mut merged = bestk_report.clone();
    merged.name = "bestk-vs-consider".into();
    merged.cells.extend(consider_report.cells);
    merged.cells.push(wide);
    merged.cells.push(paper_par);
    merged.cells.push(paper_seq);
    let path = merged.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
}

fn bestk48() {
    println!("48-peer best-k cell — the >32-peer combination-mask path\n");
    let spec = bestk48_spec();
    assert_eq!(
        spec.resolved_strategy(),
        Strategy::BestK(40),
        "the cutover must force the linear arm"
    );
    let runner = ScenarioRunner::new();
    let cell = runner.run(&spec);
    let report = blockfed::scenario::ScenarioReport {
        name: spec.name.clone(),
        cells: vec![cell],
    };
    println!("{}", report.table());
    let cell = &report.cells[0];
    assert!(cell.records > 0, "nobody aggregated");
    assert!(cell.mean_final_accuracy > 0.0, "cell learned nothing");
    let widest = cell.max_mask_bit.expect("aggregates recorded on chain");
    assert!(
        widest >= 32,
        "no aggregate mask crossed the u32 boundary (max bit {widest})"
    );
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("widest recorded mask bit: {widest} — 48-peer scenario OK");
}

/// The paper-scale cell: three peers training the ~62 K-parameter SimpleNN on
/// the full SynthCifar generator — the workload scenario cells used to be too
/// slow for before batch-parallel training. One shared preset
/// ([`ScenarioSpec::paper_cell`]) backs this CI cell and the thread-sweep
/// equivalence suite.
fn paper_spec(batch_parallel: bool) -> ScenarioSpec {
    ScenarioSpec::paper_cell(
        if batch_parallel {
            "paper-par"
        } else {
            "paper-seq"
        },
        3,
    )
    .batch_parallel(batch_parallel)
}

fn paper() {
    println!("paper-scale cell — SimpleNN (~62 K params) on full SynthCifar\n");
    let runner = ScenarioRunner::new();
    let par = runner.run(&paper_spec(true));
    let seq = runner.run(&paper_spec(false));
    // The batch-parallel loop is bit-identical to the sequential one: the
    // two cells differ only in name and host wall-clock.
    assert_eq!(
        par.mean_final_accuracy, seq.mean_final_accuracy,
        "batch-parallel training changed the simulation"
    );
    assert_eq!(par.makespan_secs, seq.makespan_secs);
    assert_eq!(par.blocks, seq.blocks);
    assert!(par.records > 0, "nobody aggregated");
    assert!(
        par.mean_final_accuracy > 0.15,
        "paper-scale model learned nothing: {par:?}"
    );
    let report = blockfed::scenario::ScenarioReport {
        name: "paper-scale".into(),
        cells: vec![par, seq],
    };
    println!("{}", report.table());
    let threads = blockfed::compute::num_threads();
    println!(
        "host workers: {threads} (speedup needs >1; on one core the delta is the shard overhead)"
    );
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("paper-scale scenario OK");
}

fn demo() {
    println!("10-peer heterogeneous churn scenario — deterministic replay\n");
    let spec = churn_spec(10).named("demo-10-peer-churn").seed(33);
    let runner = ScenarioRunner::new();
    let a = runner.run(&spec);
    let b = runner.run(&spec);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let report = blockfed::scenario::ScenarioReport {
        name: spec.name.clone(),
        cells: vec![a],
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("replayed bit-identically from seed {}", spec.seed);
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "--smoke" => smoke(),
        "--bestk" => bestk(),
        "--bestk48" => bestk48(),
        "--paper" => paper(),
        "" | "--demo" => demo(),
        other => {
            eprintln!("unknown mode {other}; use --smoke, --bestk, --bestk48, --paper, or --demo");
            std::process::exit(2);
        }
    }
}
