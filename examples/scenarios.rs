//! The scenario engine, end to end.
//!
//! ```text
//! cargo run --release --example scenarios               # 10-peer churn demo
//! cargo run --release --example scenarios -- --smoke    # CI: tiny 5-peer churn+partition matrix
//! cargo run --release --example scenarios -- --bestk    # best-k vs consider wall-clock sweep (incl. n=48..256)
//! cargo run --release --example scenarios -- --bench    # --bestk + append the perf trajectory (BENCH_history.jsonl)
//! cargo run --release --example scenarios -- --bestk48  # CI: one 48-peer best-k cell past the u32 mask
//! cargo run --release --example scenarios -- --gossip128 # CI: announce/fetch byte guards + 128-peer cell
//! cargo run --release --example scenarios -- --committees # CI: hierarchical 256/512/1024-peer committee cells + flat-byte reproduction guard
//! cargo run --release --example scenarios -- --paper    # CI: paper-scale SimpleNN cell, batch-parallel vs sequential
//! cargo run --release --example scenarios -- --chaos    # CI: lossy 48-peer cells (loss 0/1/5/20%) + byte-accounting guard
//! cargo run --release --example scenarios -- --adaptive # CI: churn+shock cell, policy controller vs static wait policies (time-to-accuracy)
//! cargo run --release --example scenarios -- --trace    # CI: traced runs bit-identical to untraced; JSONL + Chrome trace export
//! cargo run --release --example scenarios -- --memcheck # CI: 48-peer cell twice in-process; chain-store entries stay bounded
//! cargo run --release --example scenarios -- --speedup  # per-phase wall clock of matmul/FedAvg/par_train_epochs at 1/2/8 threads
//! ```
//!
//! Every scenario mode prints the matrix table and writes the
//! machine-readable `BENCH_scenarios.json` (per-cell wall-clock + accuracy)
//! to the working directory; `--bench` additionally appends one line per cell
//! to `BENCH_history.jsonl` (cell, gossip/fetch bytes, wall clock, git rev)
//! so deltas stay visible across PRs. `--trace` writes `TRACE_bestk48.jsonl`
//! (schema-validated) and `TRACE_bestk48.json` (open in Perfetto /
//! `chrome://tracing`); `--speedup` appends one kernel-timing line per thread
//! count to `BENCH_history.jsonl`.

use blockfed::core::{CommitteeSpec, ControllerSpec, RuleConfig};
use blockfed::data::Partition;
use blockfed::fl::{Strategy, WaitPolicy};
use blockfed::net::{GossipMode, LinkSpec};
use blockfed::scenario::{
    CellReport, DataSpec, ScenarioMatrix, ScenarioReport, ScenarioRunner, ScenarioSpec,
};
use blockfed::sim::{SimDuration, SimTime, UniformJitter};
use blockfed::telemetry::{MemorySink, PhaseProfiler};

/// Committed regression ceiling for the 48-peer best-k cell's *flood* bytes
/// under announce/fetch. The legacy full-payload flood recorded ~51 MB for
/// this cell; announcements keep it under this bound, and CI fails if a
/// change pushes flood traffic back above it.
const GOSSIP48_CEILING_BYTES: u64 = 12_000_000;

/// The committed byte accounting of the lossless 48-peer announce/fetch cell
/// (`BENCH_history.jsonl`). `--chaos` asserts a `loss_rate: 0.0` run still
/// reproduces these exactly: the loss machinery must be invisible when the
/// links are clean.
const BESTK48_GOSSIP_BYTES: u64 = 6_593_536;
const BESTK48_FETCH_BYTES: u64 = 45_120_000;

/// Committed regression ceilings for the 512-/1024-peer committee cells'
/// gossip bytes: epidemic fan-out bounds announcement traffic by
/// `digest × fanout × nodes` per rumor, so the flood term scales with the
/// rumor count instead of the mesh's edge count. CI fails if a change
/// pushes committee-mode gossip back onto the edge-count curve (a flat
/// 512-peer announce/fetch extrapolation already crosses 750 MB).
const COM512_GOSSIP_CEILING_BYTES: u64 = 380_000_000;
const COM1024_GOSSIP_CEILING_BYTES: u64 = 1_500_000_000;

/// A small, fully featured churn scenario: heterogeneous compute, one
/// mid-run partition + heal, a late join and an early leave.
fn churn_spec(peers: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("churn", peers)
        .rounds(2)
        .consider_cutover(6, 3)
        .partition_at(3.0, &[0], &[1, 2])
        .heal_at(8.0)
        .join_at(10.0, peers - 1)
        .leave_at(14.0, 1);
    for (i, c) in spec.computes.iter_mut().enumerate() {
        c.train_rate = 700.0 - 40.0 * i as f64; // fast head, straggling tail
    }
    spec
}

fn smoke() {
    println!("scenario smoke — 5-peer churn + partition matrix\n");
    let matrix = ScenarioMatrix::new(churn_spec(5))
        .vary_wait(&[WaitPolicy::All, WaitPolicy::FirstK(3)])
        .vary_seed(&[1, 2]);
    let runner = ScenarioRunner::new();
    let report = runner.run_matrix(&matrix);
    println!("{}", report.table());
    assert_eq!(report.cells.len(), 4, "smoke matrix must expand to 4 cells");
    for cell in &report.cells {
        assert!(cell.records > 0, "cell {} never aggregated", cell.name);
        assert!(
            cell.mean_final_accuracy > 0.0,
            "cell {} learned nothing",
            cell.name
        );
    }
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("scenario smoke OK");
}

/// The 48-peer best-k cell: past the old 32-peer (u32 combo-mask) ceiling, a
/// requested `Consider` forced through the cutover onto `BestK(40)` so the
/// linear arm runs and every recorded aggregate's mask spans bits ≥ 32.
fn bestk48_spec() -> ScenarioSpec {
    ScenarioSpec::new("bestk48", 48)
        .rounds(2)
        .consider_cutover(6, 40)
        .data(DataSpec::scaled_for(48))
        .seed(48)
}

/// A wide announce/fetch cell at `n` peers: best-k keeps aggregation linear,
/// and `k` large enough that recorded masks must reach into the population's
/// upper half. Difficulty scales with the population so the block cadence —
/// and with it the fork rate — stays at the 48-peer cell's level instead of
/// shrinking toward the link latency.
fn wide_cell(n: usize, k: usize) -> ScenarioSpec {
    ScenarioSpec::new(format!("scale{n}"), n)
        .rounds(2)
        .consider_cutover(6, k)
        .difficulty(200_000 * n as u128 / 48)
        .data(DataSpec::scaled_for(n))
        .seed(n as u64)
}

/// Runs a wide announce/fetch cell and asserts every peer finished every
/// round.
fn run_wide(runner: &ScenarioRunner, n: usize, k: usize) -> CellReport {
    let cell = runner.run(&wide_cell(n, k));
    assert_eq!(cell.records, n * 2, "{n}-peer cell incomplete");
    assert!(cell.mean_final_accuracy > 0.0);
    cell
}

/// The 48-peer certification pair — the best-k cell under announce/fetch and
/// its Full-mode twin — asserted to be the identical simulation (the modes
/// may only move bytes between the meters). Shared by the `--bestk`/`--bench`
/// feed and the `--gossip128` CI guard so they can never drift apart.
fn certified_48_pair(runner: &ScenarioRunner) -> (CellReport, CellReport) {
    let af = runner.run(&bestk48_spec());
    let full = runner.run(
        &bestk48_spec()
            .named("bestk48-full")
            .gossip(GossipMode::Full),
    );
    assert_eq!(
        af.mean_final_accuracy, full.mean_final_accuracy,
        "gossip mode changed the simulation"
    );
    assert_eq!(af.makespan_secs, full.makespan_secs);
    assert_eq!(af.blocks, full.blocks);
    assert_eq!(af.records, full.records);
    assert_eq!(full.fetch_bytes, 0, "full flooding never meters fetches");
    (af, full)
}

/// Builds (prints + writes) the full best-k/consider sweep report, now
/// including the gossip-mode pair at 48 peers and the 128/256-peer
/// announce/fetch cells.
fn bestk_report() -> ScenarioReport {
    println!("best-k vs consider — wall-clock of the aggregation search\n");
    let runner = ScenarioRunner::new();
    // Both sweeps share the same 48-peer-capable datasets so their
    // wall-clocks compare apples to apples at every N.
    let data = DataSpec::scaled_for(48);

    // The linear-cost path scales to peer counts where the exponential
    // search is unthinkable — including 48 peers, past the old u32
    // combo-mask ceiling: force each strategy explicitly (no cutover).
    let bestk = ScenarioMatrix::new(
        ScenarioSpec::new("bestk-sweep", 3)
            .rounds(2)
            .strategy(Strategy::BestK(3))
            .data(data.clone()),
    )
    .vary_peers_default();
    let bestk_report = runner.run_matrix(&bestk);
    println!("{}", bestk_report.table());

    // The exponential search is only run where it terminates in reasonable
    // time; at N = 20 it would evaluate 2^20 − 1 combinations per peer
    // per round.
    let consider = ScenarioMatrix::new(
        ScenarioSpec::new("consider-sweep", 3)
            .rounds(2)
            .strategy(Strategy::Consider)
            .consider_cutover(32, 3) // explicitly disable the cutover
            .data(data),
    )
    .vary_peers(&[3, 5, 10, 15]);
    let consider_report = runner.run_matrix(&consider);
    println!("{}", consider_report.table());

    // Plus the wide-mask certification cell — in both gossip modes, so the
    // JSON feed documents the announce/fetch flood-byte delta at 48 peers.
    let (wide, wide_full) = certified_48_pair(&runner);
    assert!(
        wide.max_mask_bit.unwrap_or(0) >= 32,
        "48-peer cell never recorded a >32-bit mask: {wide:?}"
    );

    // The 128- and 256-peer announce/fetch cells: past the old 128-peer
    // orchestrator ceiling, up to the combination mask's native width.
    let scale128 = run_wide(&runner, 128, 100);
    let scale256 = run_wide(&runner, 256, 200);
    assert!(
        scale256.max_mask_bit.unwrap_or(0) >= 128,
        "256-peer cell never crossed mask bit 128: {scale256:?}"
    );

    // The paper-scale cell, batch-parallel and sequential: identical
    // simulations (the equality below), so the wall-clock delta between the
    // two rows is exactly what batch-parallel training buys (or, on one
    // core, its shard overhead).
    let paper_par = runner.run(&paper_spec(true));
    let paper_seq = runner.run(&paper_spec(false));
    assert_eq!(
        paper_par.mean_final_accuracy, paper_seq.mean_final_accuracy,
        "batch-parallel training changed the simulation"
    );

    // Merge everything into the JSON feed.
    let mut merged = bestk_report.clone();
    merged.name = "bestk-vs-consider".into();
    merged.cells.extend(consider_report.cells);
    merged.cells.push(wide);
    merged.cells.push(wide_full);
    merged.cells.push(scale128);
    merged.cells.push(scale256);
    merged.cells.push(paper_par);
    merged.cells.push(paper_seq);
    println!("{}", merged.table());
    let path = merged.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    merged
}

fn bestk() {
    let _ = bestk_report();
}

/// The short git revision, for perf-trajectory lines; "unknown" outside a
/// git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// `--bestk` plus the perf trajectory: appends one `BENCH_history.jsonl`
/// line per cell so `BENCH_scenarios.json` deltas are tracked across PRs.
fn bench() {
    let report = bestk_report();
    let rev = git_rev();
    let path = report
        .append_history(".", &rev)
        .expect("append BENCH_history.jsonl");
    println!(
        "appended {} cells at rev {} to {}",
        report.cells.len(),
        rev,
        path.display()
    );
}

fn bestk48() {
    println!("48-peer best-k cell — the >32-peer combination-mask path\n");
    let spec = bestk48_spec();
    assert_eq!(
        spec.resolved_strategy(),
        Strategy::BestK(40),
        "the cutover must force the linear arm"
    );
    let runner = ScenarioRunner::new();
    let cell = runner.run(&spec);
    let report = blockfed::scenario::ScenarioReport {
        name: spec.name.clone(),
        cells: vec![cell],
    };
    println!("{}", report.table());
    let cell = &report.cells[0];
    assert!(cell.records > 0, "nobody aggregated");
    assert!(cell.mean_final_accuracy > 0.0, "cell learned nothing");
    let widest = cell.max_mask_bit.expect("aggregates recorded on chain");
    assert!(
        widest >= 32,
        "no aggregate mask crossed the u32 boundary (max bit {widest})"
    );
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("widest recorded mask bit: {widest} — 48-peer scenario OK");
}

/// CI certification of the announce/fetch protocol: the 48-peer best-k cell
/// must flood ≥ 5× fewer bytes than its full-flood twin (and stay under the
/// committed ceiling), the two modes must drive the identical simulation,
/// and a 128-peer announce/fetch cell — past the old orchestrator ceiling —
/// must run green with masks in the population's upper half.
fn gossip128() {
    println!("announce/fetch gossip — 48-peer byte guards + 128-peer cell\n");
    let runner = ScenarioRunner::new();
    let (af, full) = certified_48_pair(&runner);
    assert!(
        af.gossip_bytes * 5 <= full.gossip_bytes,
        "announce/fetch flood bytes not ≥5× below full flooding: {} vs {}",
        af.gossip_bytes,
        full.gossip_bytes
    );
    assert!(
        af.gossip_bytes <= GOSSIP48_CEILING_BYTES,
        "48-peer flood bytes regressed past the committed ceiling: {} > {}",
        af.gossip_bytes,
        GOSSIP48_CEILING_BYTES
    );

    let scale128 = run_wide(&runner, 128, 100);
    let widest = scale128.max_mask_bit.expect("aggregates recorded");
    assert!(
        widest >= 64,
        "128-peer masks never reached the upper half (max bit {widest})"
    );

    let report = blockfed::scenario::ScenarioReport {
        name: "gossip128".into(),
        cells: vec![af, full, scale128],
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("announce/fetch certification OK (widest 128-peer mask bit: {widest})");
}

/// A hierarchical cell at `n` peers sharded into `committees` contiguous
/// committees: tier-1 aggregation stays linear via the `BestK(48)` cutover
/// inside each committee, the tier-2 merge records a union mask over every
/// participating member, and epidemic fan-out keeps announcement traffic off
/// the edge-count curve. Difficulty scales with the population so block
/// cadence stays at the 48-peer cell's level.
fn committee_cell(n: usize, committees: usize) -> ScenarioSpec {
    ScenarioSpec::new(format!("scale{n}-committee"), n)
        .rounds(2)
        .consider_cutover(6, 48)
        .difficulty(200_000 * n as u128 / 48)
        .gossip(GossipMode::Epidemic { fanout: 3 })
        .committees(CommitteeSpec::contiguous(committees))
        .data(DataSpec::scaled_for(n))
        .seed(n as u64)
}

/// The hierarchical-aggregation certification (`--committees`):
///
/// 1. Hierarchy off **is** the flat path, byte for byte: a single-committee,
///    full-fan-out run of the 48-peer best-k cell reproduces the committed
///    flat byte accounting exactly.
/// 2. The 256-peer flat-vs-committee pair: sharding the same population into
///    16 committees under epidemic fan-out must cut total traffic
///    (gossip + fetch) to ≤ 50 % of the flat baseline.
/// 3. 512- and 1024-peer committee cells — past the old mask ceiling — run
///    green (every peer merges every round) under the committed gossip-byte
///    ceiling, with on-chain masks crossing bit 256 at 1024 peers.
fn committees() {
    println!("hierarchical committees — flat reproduction guard + 256/512/1024 cells\n");
    let runner = ScenarioRunner::new();

    // 1. The exact-reproduction guard: one committee, default announce/fetch
    //    fan-out. The committee layer must normalize itself away entirely.
    let one = runner.run(
        &bestk48_spec()
            .named("bestk48-c1")
            .committees(CommitteeSpec::contiguous(1)),
    );
    assert_eq!(
        one.gossip_bytes, BESTK48_GOSSIP_BYTES,
        "a single-committee run must reproduce the committed flat gossip bytes exactly"
    );
    assert_eq!(
        one.fetch_bytes, BESTK48_FETCH_BYTES,
        "a single-committee run must reproduce the committed flat fetch bytes exactly"
    );
    assert_eq!(
        one.committee_rounds(),
        0,
        "a single committee must lower to the flat path, not merge"
    );

    // 2. The 256-peer pair: the flat announce/fetch baseline (the committed
    //    scale256 cell) against the same population in 16 committees.
    let flat = run_wide(&runner, 256, 200);
    let com256 = runner.run(&committee_cell(256, 16));
    assert_eq!(
        com256.records,
        256 * 2,
        "256-peer committee cell incomplete"
    );
    assert_eq!(
        com256.committee_rounds(),
        256 * 2,
        "every peer must complete a tier-2 merge every round"
    );
    assert!(com256.mean_final_accuracy > 0.0);
    let flat_total = flat.gossip_bytes + flat.fetch_bytes;
    let com_total = com256.gossip_bytes + com256.fetch_bytes;
    assert!(
        com_total * 2 <= flat_total,
        "committee mode must cut gossip+fetch to ≤ 50% of flat: {com_total} vs {flat_total}"
    );

    // 3. Past the old 256-peer ceiling: 512 and 1024 peers, green and cheap.
    let com512 = runner.run(&committee_cell(512, 16));
    let com1024 = runner.run(&committee_cell(1024, 16));
    for (cell, n, ceiling) in [
        (&com512, 512u64, COM512_GOSSIP_CEILING_BYTES),
        (&com1024, 1024u64, COM1024_GOSSIP_CEILING_BYTES),
    ] {
        assert_eq!(
            cell.records as u64,
            n * 2,
            "{}-peer committee cell incomplete",
            n
        );
        assert_eq!(
            cell.committee_rounds(),
            n * 2,
            "{}-peer cell: merges incomplete",
            n
        );
        assert!(cell.mean_final_accuracy > 0.0);
        assert!(
            cell.gossip_bytes <= ceiling,
            "{}-peer committee gossip regressed past the ceiling: {} > {}",
            n,
            cell.gossip_bytes,
            ceiling
        );
    }
    let widest = com1024.max_mask_bit.expect("1024-peer aggregates recorded");
    assert!(
        widest >= 256,
        "no 1024-peer mask crossed the old 256-bit ceiling (max bit {widest})"
    );

    let report = ScenarioReport {
        name: "committees".into(),
        cells: vec![one, flat, com256, com512, com1024],
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    let rev = git_rev();
    let hist = report
        .append_history(".", &rev)
        .expect("append BENCH_history.jsonl");
    println!(
        "appended {} cells at rev {rev} to {}",
        report.cells.len(),
        hist.display()
    );
    println!("hierarchical committee certification OK (widest 1024-peer mask bit: {widest})");
}

/// The paper-scale cell: three peers training the ~62 K-parameter SimpleNN on
/// the full SynthCifar generator — the workload scenario cells used to be too
/// slow for before batch-parallel training. One shared preset
/// ([`ScenarioSpec::paper_cell`]) backs this CI cell and the thread-sweep
/// equivalence suite.
fn paper_spec(batch_parallel: bool) -> ScenarioSpec {
    ScenarioSpec::paper_cell(
        if batch_parallel {
            "paper-par"
        } else {
            "paper-seq"
        },
        3,
    )
    .batch_parallel(batch_parallel)
}

fn paper() {
    println!("paper-scale cell — SimpleNN (~62 K params) on full SynthCifar\n");
    let runner = ScenarioRunner::new();
    let par = runner.run(&paper_spec(true));
    let seq = runner.run(&paper_spec(false));
    // The batch-parallel loop is bit-identical to the sequential one: the
    // two cells differ only in name and host wall-clock.
    assert_eq!(
        par.mean_final_accuracy, seq.mean_final_accuracy,
        "batch-parallel training changed the simulation"
    );
    assert_eq!(par.makespan_secs, seq.makespan_secs);
    assert_eq!(par.blocks, seq.blocks);
    assert!(par.records > 0, "nobody aggregated");
    assert!(
        par.mean_final_accuracy > 0.15,
        "paper-scale model learned nothing: {par:?}"
    );
    let report = blockfed::scenario::ScenarioReport {
        name: "paper-scale".into(),
        cells: vec![par, seq],
    };
    println!("{}", report.table());
    let threads = blockfed::compute::num_threads();
    println!(
        "host workers: {threads} (speedup needs >1; on one core the delta is the shard overhead)"
    );
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("paper-scale scenario OK");
}

/// The lossy-network certification: the 48-peer announce/fetch cell across
/// loss ∈ {0, 1%, 5%, 20%}. The lossless run must reproduce the committed
/// byte accounting exactly (the loss machinery is invisible on clean links);
/// every lossy run must settle through the fetch retry machinery — never the
/// watchdog — with the same records and final accuracy as the lossless twin,
/// nonzero drop/retry meters, and a retry count bounded by the attempt
/// budget per drop.
fn chaos() {
    println!("lossy 48-peer cells — loss sweep over the announce/fetch best-k cell\n");
    let runner = ScenarioRunner::new();
    let clean = runner.run(&bestk48_spec());
    assert_eq!(
        clean.gossip_bytes, BESTK48_GOSSIP_BYTES,
        "loss_rate 0.0 must reproduce the committed gossip bytes exactly"
    );
    assert_eq!(
        clean.fetch_bytes, BESTK48_FETCH_BYTES,
        "loss_rate 0.0 must reproduce the committed fetch bytes exactly"
    );
    assert_eq!(clean.dropped_msgs(), 0, "clean links never drop");
    assert_eq!(clean.fetch_retries(), 0, "clean links never retry");
    assert!(!clean.stalled());

    let mut cells = vec![clean.clone()];
    for (label, loss) in [
        ("bestk48-loss1", 0.01),
        ("bestk48-loss5", 0.05),
        ("bestk48-loss20", 0.20),
    ] {
        let cell = runner.run(&bestk48_spec().named(label).loss(loss));
        assert!(
            !cell.stalled(),
            "{label} hit the watchdog instead of settling"
        );
        assert_eq!(
            cell.records, clean.records,
            "{label} settled with fewer round records than the lossless twin"
        );
        assert_eq!(
            cell.mean_final_accuracy, clean.mean_final_accuracy,
            "{label}: loss changed the wait-all aggregation outcome"
        );
        assert!(cell.dropped_msgs() > 0, "{label} never dropped a delivery");
        assert!(
            cell.fetch_retries() <= cell.dropped_msgs() * 8,
            "{label}: retries unbounded — {} retries for {} drops",
            cell.fetch_retries(),
            cell.dropped_msgs()
        );
        cells.push(cell);
    }
    assert!(
        cells[2].fetch_retries() > 0,
        "5% loss never exercised a fetch retry"
    );

    let report = blockfed::scenario::ScenarioReport {
        name: "chaos48".into(),
        cells,
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("lossy 48-peer certification OK");
}

/// The accuracy bar the adaptive certification clocks: the first virtual
/// second at which a whole round settled at or above this mean accuracy.
const ADAPTIVE_TTA_TARGET: f64 = 0.95;

/// The 48-peer churn + hash-shock cell behind `--adaptive`. Peer 0 holds a
/// label-skewed shard and crawls through training: its round-1 update lands
/// only after ~5 virtual seconds (behind a partition window that forks its
/// solo chain), and its round-2 update is still baking when the peer leaves
/// for good at 10 s — so every wait-all round is gated by the straggler, and
/// round 2 can only settle when the leave releases it. A first-k round sails
/// past the straggler but its thin aggregates never see the excluded shards'
/// classes. The cell also joins a late peer and doubles a miner's hash rate —
/// the churn+shock regime the paper's static tables sweep.
fn adaptive48_spec() -> ScenarioSpec {
    let scaled = DataSpec::scaled_for(48);
    // Floods relay around partial cuts, so truly isolating peer 0 means
    // severing it from *every* other peer — minus peer 9, which has not
    // joined yet and may not be referenced before it does.
    let early: Vec<usize> = (1..48).filter(|&p| p != 9).collect();
    let mut spec = ScenarioSpec::new("adaptive48", 48)
        .rounds(3)
        .consider_cutover(6, 40)
        .data(DataSpec {
            partition: Partition::DirichletLabelSkew { alpha: 0.2 },
            synth: blockfed::data::SynthCifarConfig {
                train_per_class: 150,
                test_per_class: 150,
                ..scaled.synth
            },
        })
        .partition_at(0.1, &[0], &early)
        .heal_at(4.5)
        .hash_shock_at(2.0, 5, 6.0)
        .join_at(5.5, 9)
        .leave_at(10.0, 0)
        .seed(48);
    // Peer 0 is the churn victim: it trains its (tiny, skewed) shard at a
    // crawl, so round 1 settles only when its update finally lands and its
    // round-2 update is still unfinished when it leaves at 10 s. The tail
    // half of the population is a medium-speed band, so a first-k
    // aggregation deterministically excludes part of its skewed shards.
    spec.computes[0].train_rate = 0.8;
    for c in spec.computes.iter_mut().skip(24) {
        c.train_rate = 60.0;
    }
    spec
}

/// The rule the `--adaptive` controller runs: demote wait-all as soon as a
/// round waited > 0.5 virtual seconds (every peer's round-1 wait clears that
/// bar, whichever one aggregates first), keeping 90 % of the active peers;
/// never promote back (`wait_low_secs: 0.0`) and leave staleness decay
/// alone, so the certified trajectory is purely the wait-policy story.
fn adaptive_rule() -> RuleConfig {
    RuleConfig {
        wait_high_secs: 0.5,
        wait_low_secs: 0.0,
        keep_fraction: 0.9,
        staleness_high_secs: f64::INFINITY,
    }
}

/// The adaptive-policy certification: the churn+shock cell under static
/// wait-all, static first-k, and the threshold controller. The controller
/// must switch at least once and reach [`ADAPTIVE_TTA_TARGET`] no later than
/// *every* static wait policy — the "wait or not to wait" question answered
/// online instead of per run.
fn adaptive() {
    println!("adaptive policy — 48-peer churn+shock cell: controller vs static wait policies\n");
    let runner = ScenarioRunner::new();
    let base = adaptive48_spec();
    let all = runner.run(&base.clone().named("adaptive48-all"));
    let first24 = runner.run(
        &base
            .clone()
            .named("adaptive48-first24")
            .wait(WaitPolicy::FirstK(24)),
    );
    let first36 = runner.run(
        &base
            .clone()
            .named("adaptive48-first36")
            .wait(WaitPolicy::FirstK(36)),
    );
    let ctl = runner.run(
        &base
            .named("adaptive48-ctl")
            .controller(ControllerSpec::threshold(adaptive_rule())),
    );

    let report = ScenarioReport {
        name: "adaptive48".into(),
        cells: vec![all, first24, first36, ctl],
    };
    println!("{}", report.time_to_accuracy_table(ADAPTIVE_TTA_TARGET));
    for cell in &report.cells {
        let traj: Vec<String> = cell
            .round_accuracy
            .iter()
            .map(|(t, a)| format!("{t:.1}s→{a:.3}"))
            .collect();
        println!("{:<22} {}", cell.name, traj.join("  "));
    }
    println!("\n{}", report.table());

    let ctl = &report.cells[3];
    assert!(
        ctl.policy_switches() > 0,
        "the controller never fired on the churn+shock cell"
    );
    assert_eq!(
        report.cells[0].policy_switches(),
        0,
        "a static cell metered a switch"
    );
    let ctl_tta = ctl
        .time_to_accuracy(ADAPTIVE_TTA_TARGET)
        .expect("the controlled run never reached the target accuracy");
    for cell in &report.cells[..3] {
        match cell.time_to_accuracy(ADAPTIVE_TTA_TARGET) {
            Some(t) => assert!(
                ctl_tta <= t,
                "static {} reached {:.0}% accuracy at {t:.1}s, before the controller's {ctl_tta:.1}s",
                cell.name,
                ADAPTIVE_TTA_TARGET * 100.0
            ),
            None => println!(
                "static {} never reached {:.0}% accuracy",
                cell.name,
                ADAPTIVE_TTA_TARGET * 100.0
            ),
        }
    }
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    let rev = git_rev();
    let hist = report
        .append_history(".", &rev)
        .expect("append BENCH_history.jsonl");
    println!(
        "appended {} cells at rev {rev} to {}",
        report.cells.len(),
        hist.display()
    );
    println!("adaptive policy certification OK (controller TTA {ctl_tta:.1}s)");
}

/// The telemetry certification:
///
/// 1. With telemetry off (the default no-op sink), the lossless 48-peer cell
///    still reproduces the committed byte accounting exactly — tracing
///    machinery is invisible when unused.
/// 2. A lossy 48-peer cell traced into a real sink folds the *identical*
///    report (bit for bit) as the untraced run — attaching a sink never
///    perturbs the simulation.
/// 3. The captured trace carries the round lifecycle (round ⊃ train → wait),
///    flood/fetch network spans, and PoW seals, stamped with virtual time;
///    the JSONL export passes its schema validator and the Chrome-trace
///    export is written for Perfetto.
/// 4. A deliberately stalled mini-cell's trace carries the watchdog firing.
fn trace() {
    println!("telemetry — traced vs untraced bit-identity + JSONL/Perfetto export\n");
    let runner = ScenarioRunner::new();

    // Telemetry off must reproduce the committed byte accounting.
    let clean = runner.run(&bestk48_spec());
    assert_eq!(
        clean.gossip_bytes, BESTK48_GOSSIP_BYTES,
        "telemetry-off run must reproduce the committed gossip bytes"
    );
    assert_eq!(
        clean.fetch_bytes, BESTK48_FETCH_BYTES,
        "telemetry-off run must reproduce the committed fetch bytes"
    );

    // A lossy cell, traced and untraced: the identical report.
    let lossy = bestk48_spec().named("bestk48-loss5").loss(0.05);
    let plain = runner.run(&lossy);
    let mut sink = MemorySink::new();
    let traced = runner.run_traced(&lossy, &mut sink);
    assert_eq!(plain, traced, "a trace sink perturbed the simulation");
    assert!(traced.dropped_msgs() > 0, "the lossy cell never dropped");

    // The trace carries every span family the acceptance bar names, with
    // virtual-time stamps.
    for name in [
        "round",
        "round.train",
        "round.wait",
        "net.flood",
        "fetch",
        "pow.sealed",
        "round.aggregated",
        "watchdog.armed",
    ] {
        assert!(sink.contains(name), "trace missing {name}");
    }
    assert!(
        sink.records().iter().any(|r| r.time > SimTime::ZERO),
        "no record carries a nonzero virtual timestamp"
    );

    // Exports: schema-validated JSONL + a Chrome-trace document.
    let jsonl = sink.to_jsonl();
    let lines = blockfed::telemetry::jsonl::validate_jsonl(&jsonl)
        .expect("JSONL export failed its own schema validator");
    assert_eq!(lines, sink.records().len());
    std::fs::write("TRACE_bestk48.jsonl", &jsonl).expect("write TRACE_bestk48.jsonl");
    let chrome = sink.to_chrome_trace();
    std::fs::write("TRACE_bestk48.json", &chrome).expect("write TRACE_bestk48.json");
    println!(
        "wrote TRACE_bestk48.jsonl ({} records) and TRACE_bestk48.json ({} bytes)",
        lines,
        chrome.len()
    );

    // A watchdog-stalled mini-cell: peer 0 is isolated before anything
    // crosses the 2 s links, so wait-all can never complete; the watchdog
    // fires and the trace records it.
    let stall_spec = ScenarioSpec::new("stall-demo", 3)
        .rounds(2)
        .difficulty(1_000_000)
        .link(LinkSpec {
            latency: UniformJitter::constant(SimDuration::from_millis(2_000)),
            bandwidth: None,
            loss_rate: 0.0,
        })
        .watchdog_secs(60.0)
        .partition_at(0.15, &[0], &[1, 2])
        .seed(74);
    let mut stall_sink = MemorySink::new();
    let stalled = runner.run_traced(&stall_spec, &mut stall_sink);
    assert!(
        stalled.stalled(),
        "the partitioned wait-all cell must stall"
    );
    assert!(
        stall_sink.contains("watchdog.stalled"),
        "stall never reached the trace"
    );

    let report = blockfed::scenario::ScenarioReport {
        name: "trace".into(),
        cells: vec![clean, traced, stalled],
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("telemetry certification OK");
}

/// The chain-store memory guard — the regression that motivated replacing the
/// process-wide memos. Runs the 48-peer best-k cell **twice in one process**
/// against an explicitly shared [`blockfed::core::ChainStore`] and asserts:
///
/// 1. the store's cached entry counts are identical after run 1 and run 2 —
///    re-running the same cell re-uses the cache instead of growing it (the
///    old global memos doubled here);
/// 2. the second run is the identical simulation (accuracy, blocks, records)
///    and served its unchanged prefix from the execution memo;
/// 3. two idle epoch ticks age every entry out, so a dropped-and-reused
///    handle cannot pin a dead run's state forever.
fn memcheck() {
    println!("chain-store memory guard — 48-peer cell twice in one process\n");
    let runner = ScenarioRunner::new();
    let store = blockfed::core::ChainStore::new();

    let first = runner.run_with_store(&bestk48_spec(), &store);
    let exec_entries = store.exec_entries();
    let sig_entries = store.sig_entries();
    assert!(exec_entries > 0, "the cell cached no block executions");
    assert!(sig_entries > 0, "the cell cached no signature verdicts");

    let second = runner.run_with_store(&bestk48_spec(), &store);
    assert_eq!(
        store.exec_entries(),
        exec_entries,
        "re-running the same cell must not grow the execution memo"
    );
    assert_eq!(
        store.sig_entries(),
        sig_entries,
        "re-running the same cell must not grow the signature cache"
    );
    assert_eq!(first.mean_final_accuracy, second.mean_final_accuracy);
    assert_eq!(first.blocks, second.blocks);
    assert_eq!(first.records, second.records);
    assert!(
        second.metrics.counter("store_exec_hits") > first.metrics.counter("store_exec_hits"),
        "the second run never hit the warm memo"
    );
    assert_eq!(
        second.metrics.counter("store_exec_misses"),
        0,
        "every block execution was already cached"
    );

    // Two idle epochs: everything last touched in run 2 ages past the
    // keep-window and is evicted — the store cannot pin dead runs.
    store.begin_epoch();
    store.begin_epoch();
    assert_eq!(store.exec_entries(), 0, "idle epochs must drain the memo");
    assert_eq!(
        store.sig_entries(),
        0,
        "idle epochs must drain the verdicts"
    );

    let report = blockfed::scenario::ScenarioReport {
        name: "memcheck".into(),
        cells: vec![first, second],
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!(
        "chain-store memory guard OK (exec entries: {exec_entries}, sig entries: {sig_entries}, \
         drained to 0 after two idle epochs)"
    );
}

/// Per-phase wall clock of the three parallel kernels the ROADMAP asks to
/// measure — matmul, FedAvg, and `par_train_epochs` — at 1, 2, and 8 compute
/// threads, timed with [`PhaseProfiler`] (host time, strictly outside the
/// deterministic record) and appended to `BENCH_history.jsonl`. On a
/// single-core host the numbers record thread overhead rather than speedup;
/// the line carries the detected core count so readers can tell.
fn speedup() {
    use blockfed::data::{SynthCifar, SynthCifarConfig};
    use blockfed::fl::{fed_avg, ClientId, ModelUpdate};
    use blockfed::nn::{Sgd, SimpleNnConfig};
    use blockfed::tensor::{matmul, Tensor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    println!("multicore kernel timing — matmul / FedAvg / par_train_epochs at 1/2/8 threads\n");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Fixed workloads, reused at every thread count so rows compare directly.
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::from_vec(
        (0..256 * 512).map(|_| rng.gen::<f32>()).collect(),
        &[256, 512],
    );
    let b = Tensor::from_vec(
        (0..512 * 256).map(|_| rng.gen::<f32>()).collect(),
        &[512, 256],
    );
    let updates: Vec<ModelUpdate> = (0..32)
        .map(|i| {
            let params: Vec<f32> = (0..200_000).map(|_| rng.gen::<f32>()).collect();
            ModelUpdate::new(ClientId(i), 1, params, 100 + i)
        })
        .collect();
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, _test) = gen.generate(7);
    let nn_cfg = SimpleNnConfig::tiny(train.feature_dim(), train.num_classes());

    let mut lines = String::new();
    let rev = git_rev();
    for threads in [1usize, 2, 8] {
        blockfed::compute::set_threads(threads);
        let mut prof = PhaseProfiler::new();
        for _ in 0..20 {
            prof.time("matmul", || matmul(&a, &b));
        }
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        for _ in 0..10 {
            prof.time("fedavg", || fed_avg(&refs).expect("aggregate"));
        }
        let mut arch_rng = StdRng::seed_from_u64(7);
        let mut model = nn_cfg.build(&mut arch_rng);
        let mut opt = Sgd::new(0.1, 0.9);
        let batcher = blockfed::data::Batcher::new(16);
        let mut train_rng = StdRng::seed_from_u64(8);
        prof.time("par_train_epochs", || {
            model.par_train_epochs(&train, 4, &batcher, &mut opt, &mut train_rng)
        });
        blockfed::compute::set_threads(0);

        println!("threads = {threads}");
        println!("{}", prof.table());
        lines.push_str(&format!(
            "{{\"cell\": \"kernel-speedup\", \"threads\": {threads}, \"host_cores\": {cores}, \
             \"matmul_secs\": {:.6}, \"fedavg_secs\": {:.6}, \"par_train_epochs_secs\": {:.6}, \
             \"git_rev\": \"{rev}\"}}\n",
            prof.secs("matmul"),
            prof.secs("fedavg"),
            prof.secs("par_train_epochs"),
        ));
    }

    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_history.jsonl")
        .expect("open BENCH_history.jsonl");
    file.write_all(lines.as_bytes())
        .expect("append BENCH_history.jsonl");
    println!("appended 3 kernel-speedup lines (host cores: {cores}) to BENCH_history.jsonl");
}

fn demo() {
    println!("10-peer heterogeneous churn scenario — deterministic replay\n");
    let spec = churn_spec(10).named("demo-10-peer-churn").seed(33);
    let runner = ScenarioRunner::new();
    let a = runner.run(&spec);
    let b = runner.run(&spec);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let report = blockfed::scenario::ScenarioReport {
        name: spec.name.clone(),
        cells: vec![a],
    };
    println!("{}", report.table());
    let path = report.write_json(".").expect("write BENCH_scenarios.json");
    println!("wrote {}", path.display());
    println!("replayed bit-identically from seed {}", spec.seed);
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "--smoke" => smoke(),
        "--bestk" => bestk(),
        "--bench" => bench(),
        "--bestk48" => bestk48(),
        "--gossip128" => gossip128(),
        "--committees" => committees(),
        "--paper" => paper(),
        "--chaos" => chaos(),
        "--adaptive" => adaptive(),
        "--trace" => trace(),
        "--memcheck" => memcheck(),
        "--speedup" => speedup(),
        "" | "--demo" => demo(),
        other => {
            eprintln!(
                "unknown mode {other}; use --smoke, --bestk, --bench, --bestk48, --gossip128, \
                 --committees, --paper, --chaos, --adaptive, --trace, --memcheck, --speedup, \
                 or --demo"
            );
            std::process::exit(2);
        }
    }
}
