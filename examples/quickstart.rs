//! Quickstart: a 3-client Vanilla federated-learning run on SynthCifar,
//! comparing the paper's two aggregation strategies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blockfed::data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{ClientId, Strategy, VanillaFl, VanillaFlConfig};
use blockfed::nn::SimpleNnConfig;
use blockfed::report::{fmt_acc, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Data: a seeded CIFAR-10 stand-in, split across 3 clients with
    //    Dirichlet label skew (the heterogeneity the paper reasons about).
    let gen = SynthCifar::new(SynthCifarConfig::default());
    let (train, test) = gen.generate(7);
    let mut rng = StdRng::seed_from_u64(7);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.8 },
        &mut rng,
    );
    for (i, s) in shards.iter().enumerate() {
        println!(
            "client {}: {} examples, class counts {:?}",
            ClientId(i),
            s.len(),
            s.class_counts()
        );
    }

    // 2. Model: the paper's from-scratch SimpleNN (~62 K parameters).
    let nn = SimpleNnConfig::paper();
    println!(
        "model: Simple NN, {} params (~{} KB serialized)",
        nn.param_count(),
        nn.payload_bytes() / 1024
    );

    // 3. Federated training under both aggregation strategies.
    let tests = vec![test.clone(), test.clone(), test.clone()];
    let mut table = Table::new(
        "Vanilla FL on SynthCifar — final accuracy",
        &[
            "Strategy",
            "Round 1",
            "Final",
            "Chosen combination (final round)",
        ],
    );
    for strategy in [Strategy::Consider, Strategy::NotConsider] {
        let config = VanillaFlConfig {
            rounds: 5,
            local_epochs: 5,
            strategy,
            // Split each mini-batch across host cores; bit-identical to the
            // sequential loop, just faster on multicore machines.
            batch_parallel: true,
            ..Default::default()
        };
        let driver = VanillaFl::new(config, &shards, &tests, &test);
        let mut arch_rng = StdRng::seed_from_u64(1);
        let mut run_rng = StdRng::seed_from_u64(2);
        let run = driver.run(&mut || nn.build(&mut arch_rng), &mut run_rng);
        let series = run.client_series(ClientId(0));
        let last = run.records.last().expect("rounds ran");
        table.row_owned(vec![
            strategy.to_string(),
            fmt_acc(series[0]),
            fmt_acc(*series.last().unwrap()),
            last.chosen.to_string(),
        ]);
    }
    println!("\n{table}");
    println!("\"consider\" may drop unhelpful models; \"not consider\" always averages all three.");
}
