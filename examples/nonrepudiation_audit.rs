//! Non-repudiation end to end: a compromised peer poisons its model, honest
//! peers detect and drop it, and the blockchain evidence pins the poisoned
//! artefact to its author — who cannot deny it, and cannot be framed.
//!
//! ```text
//! cargo run --release --example nonrepudiation_audit
//! ```

use blockfed::chain::{Blockchain, GenesisSpec, SealPolicy};
use blockfed::core::{
    collect_evidence, register_tx, submit_model_tx, verify_evidence, AuditError, Decentralized,
    DecentralizedConfig,
};
use blockfed::crypto::KeyPair;
use blockfed::data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{Adversary, Attack, ClientId, ModelUpdate, WaitPolicy};
use blockfed::nn::SimpleNnConfig;
use blockfed::vm::{BlockfedRuntime, NativeContract, NATIVE_REGISTRY_CODE};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    decentralized_attack_and_audit();
    manual_evidence_demo();
}

/// Part 1 — the full system: peer A mounts a 50x boosting attack; the fitness
/// and norm gates drop it; the post-run audit verifies authorship of every
/// published model, poisoned ones included.
fn decentralized_attack_and_audit() {
    println!("=== Part 1: attack, detection, and post-run audit ===\n");
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(2);
    let mut rng = StdRng::seed_from_u64(3);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.7 },
        &mut rng,
    );
    let tests = vec![test.clone(), test.clone(), test];

    let config = DecentralizedConfig {
        rounds: 3,
        local_epochs: 2,
        batch_size: 16,
        difficulty: 200_000,
        adversaries: vec![Adversary::new(ClientId(0), Attack::Scale { factor: 50.0 })],
        fitness_threshold: Some(0.30),
        norm_z_threshold: Some(1.2),
        wait_policy: WaitPolicy::All,
        seed: 7,
        ..Default::default()
    };
    let driver = Decentralized::new(config, &shards, &tests);
    let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
    let mut arch_rng = StdRng::seed_from_u64(7);
    let run = driver.run(&mut || nn.build(&mut arch_rng));

    println!("attacks mounted:   {}", run.trace.count("attack.mounted"));
    for (peer, round, reason) in run.drops() {
        println!("peer {} round {round}: dropped {reason}", ClientId(peer));
    }
    println!("\npost-run audit of every published model (peer 0's chain):");
    for a in &run.audits {
        println!(
            "  {} round {}: {}",
            a.client,
            a.round,
            if a.verified {
                "signed + merkle-anchored + PoW-buried ✓"
            } else {
                "UNVERIFIED ✗"
            }
        );
    }
    let poisoned = run
        .published_updates
        .iter()
        .find(|u| u.client == ClientId(0))
        .expect("attacker published");
    println!(
        "\nthe attacker's round-1 artefact is preserved verbatim (param norm {:.1}) —\n\
         it signed what it published; authorship is undeniable.\n",
        blockfed::fl::robust::l2_norm(&poisoned.params)
    );
}

/// Part 2 — the evidence bundle itself: collect it from a hand-built chain,
/// verify it, then show every tampering attempt fails.
fn manual_evidence_demo() {
    println!("=== Part 2: the evidence bundle, tampered and rejected ===\n");
    let mut rng = StdRng::seed_from_u64(1);
    let author_key = KeyPair::generate(&mut rng);
    let bystander_key = KeyPair::generate(&mut rng);
    let addrs = [author_key.address(), bystander_key.address()];

    let mut reg_bytes = [0u8; 20];
    reg_bytes[0] = 0xFE;
    let registry = blockfed::crypto::H160::from_bytes(reg_bytes);
    let spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
        .with_code(registry, NATIVE_REGISTRY_CODE.to_vec());
    let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
    let mut runtime = BlockfedRuntime::new();
    runtime.register_native(registry, NativeContract::FlRegistry);

    // The author publishes a (suspicious) model.
    let update = ModelUpdate::new(ClientId(0), 1, vec![50.0, -80.0, 90.0], 100);
    let txs = vec![
        register_tx(registry, &author_key, 0),
        register_tx(registry, &bystander_key, 0),
        submit_model_tx(&update, registry, &author_key, 1),
    ];
    let block = chain.build_candidate(addrs[0], txs, 1_000, &mut runtime);
    chain.import(block, &mut runtime).expect("valid block");

    let evidence = collect_evidence(&chain, registry, addrs[0], &update).expect("on chain");
    println!(
        "evidence collected: tx {}…, block {}…",
        &evidence.tx_hash.to_string()[..10],
        &evidence.block_hash.to_string()[..10]
    );
    verify_evidence(&chain, &evidence, &update).expect("verifies");
    println!("verification: OK — the author cannot deny publishing this model");

    // Denial attempt: "those aren't the parameters I published".
    let mut tampered = update.clone();
    tampered.params[0] = 0.0;
    assert_eq!(
        verify_evidence(&chain, &evidence, &tampered),
        Err(AuditError::FingerprintMismatch)
    );
    println!(
        "denial (altered params):    rejected — {}",
        AuditError::FingerprintMismatch
    );

    // Framing attempt: pin the model on the bystander.
    assert_eq!(
        collect_evidence(&chain, registry, addrs[1], &update),
        Err(AuditError::NotOnChain)
    );
    let mut framed = evidence.clone();
    framed.author = addrs[1];
    assert_eq!(
        verify_evidence(&chain, &framed, &update),
        Err(AuditError::AuthorMismatch)
    );
    println!(
        "framing (swapped author):   rejected — {}",
        AuditError::AuthorMismatch
    );
}
