//! The paper's headline system end to end: three peers that each train, mine
//! and aggregate on a private proof-of-work chain, with per-peer customized
//! aggregation over model combinations.
//!
//! ```text
//! cargo run --release --example decentralized_round
//! ```

use blockfed::core::{ComputeProfile, Decentralized, DecentralizedConfig};
use blockfed::data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{ClientId, WaitPolicy};
use blockfed::net::LinkSpec;
use blockfed::nn::SimpleNnConfig;
use blockfed::report::{fmt_acc, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let gen = SynthCifar::new(SynthCifarConfig::default());
    let (train, test) = gen.generate(11);
    let mut rng = StdRng::seed_from_u64(11);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.8 },
        &mut rng,
    );
    let tests = vec![test.clone(), test.clone(), test];

    let nn = SimpleNnConfig::paper();
    let config = DecentralizedConfig {
        rounds: 3,
        local_epochs: 5,
        wait_policy: WaitPolicy::All,
        payload_bytes: nn.payload_bytes(),
        compute: ComputeProfile::paper_vm(),
        link: LinkSpec::lan(),
        ..Default::default()
    };
    println!(
        "3 fully coupled peers: each trains (5 epochs), mines (PoW), and aggregates; \
         models travel as signed registry transactions ({} KB each).\n",
        config.payload_bytes / 1024
    );

    let driver = Decentralized::new(config, &shards, &tests);
    let mut arch_rng = StdRng::seed_from_u64(3);
    let run = driver.run(&mut || nn.build(&mut arch_rng));

    for (peer, records) in run.peer_records.iter().enumerate() {
        let mut table = Table::new(
            format!("Peer {} — per-round aggregation choices", ClientId(peer)),
            &[
                "Round",
                "Chosen combo",
                "Accuracy",
                "Wait (s)",
                "Models used",
            ],
        );
        for r in records {
            table.row_owned(vec![
                r.round.to_string(),
                r.chosen.clone(),
                fmt_acc(r.chosen_accuracy),
                format!("{:.2}", r.wait.as_secs_f64()),
                r.updates_used.to_string(),
            ]);
        }
        println!("{table}");
    }

    println!("chain after the run (peer A's view):");
    println!("  canonical blocks : {}", run.chain.blocks);
    if let Some(interval) = run.chain.mean_block_interval {
        println!("  mean block time  : {:.2}s", interval.as_secs_f64());
    }
    println!("  transactions     : {}", run.chain.total_txs);
    println!(
        "  model payloads   : {:.1} MB",
        run.chain.total_payload_bytes as f64 / 1e6
    );
    println!(
        "  finished (virtual): {:.1}s",
        run.finished_at.as_secs_f64()
    );
    println!("\ntrace excerpt:");
    for entry in run.trace.entries().iter().take(8) {
        println!("  {} {} {}", entry.time, entry.label, entry.detail);
    }
}
