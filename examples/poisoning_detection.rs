//! Abnormal-model detection and non-repudiation: a client ships poisoned
//! weights; the "consider" aggregation routes around it, the anomaly detectors
//! flag it, and the blockchain evidence makes the authorship undeniable.
//!
//! ```text
//! cargo run --release --example poisoning_detection
//! ```

use blockfed::chain::{Blockchain, GenesisSpec, SealPolicy};
use blockfed::core::{
    collect_evidence, detect_norm_outliers, register_tx, submit_model_tx, verify_evidence,
};
use blockfed::crypto::{KeyPair, H160};
use blockfed::data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{ClientId, ModelUpdate, Strategy, VanillaFl, VanillaFlConfig};
use blockfed::nn::SimpleNnConfig;
use blockfed::vm::{BlockfedRuntime, NativeContract, NATIVE_REGISTRY_CODE};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. a federated run where client A is poisoned --------------------
    let gen = SynthCifar::new(SynthCifarConfig::default());
    let (train, test) = gen.generate(5);
    let mut rng = StdRng::seed_from_u64(5);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.8 },
        &mut rng,
    );
    let tests = vec![test.clone(), test.clone(), test.clone()];
    let nn = SimpleNnConfig::paper();

    let config = VanillaFlConfig {
        rounds: 3,
        local_epochs: 3,
        strategy: Strategy::Consider,
        ..Default::default()
    };
    let driver = VanillaFl::new(config, &shards, &tests, &test);
    let mut arch_rng = StdRng::seed_from_u64(1);
    let mut run_rng = StdRng::seed_from_u64(2);
    let mut poisoned_updates: Vec<ModelUpdate> = Vec::new();
    let run = driver.run_with_hook(
        &mut || nn.build(&mut arch_rng),
        &mut |u| {
            if u.client == ClientId(0) {
                // Scale the weights absurdly — a crude poisoning attack.
                for p in &mut u.params {
                    *p *= 40.0;
                }
                poisoned_updates.push(u.clone());
            }
        },
        &mut run_rng,
    );
    println!("poisoned client: A (weights scaled 40×)\n");
    for r in &run.records {
        println!(
            "round {}: aggregator chose {{{}}} (accuracy {:.4}) — poisoned A {}",
            r.round,
            r.chosen,
            r.score,
            if r.chosen.contains(ClientId(0)) {
                "INCLUDED ⚠"
            } else {
                "excluded ✓"
            }
        );
    }

    // --- 2. the norm detector flags the poisoned update -------------------
    let clean_b = ModelUpdate::new(ClientId(1), 1, vec![0.1; 64], 100);
    let clean_c = ModelUpdate::new(ClientId(2), 1, vec![0.12; 64], 100);
    let poisoned = poisoned_updates.first().expect("hook ran").clone();
    let cohort = [&poisoned, &clean_b, &clean_c];
    let reports = detect_norm_outliers(&cohort, 1.2);
    println!("\nnorm-outlier detector over round-1 updates:");
    for rep in &reports {
        println!("  flagged update #{}: {:?}", rep.index, rep.reason);
    }

    // --- 3. on-chain evidence: the author cannot deny it ------------------
    let keys: Vec<KeyPair> = (1..=3)
        .map(|s| KeyPair::generate(&mut StdRng::seed_from_u64(s)))
        .collect();
    let addrs: Vec<H160> = keys.iter().map(KeyPair::address).collect();
    let registry = H160::from_bytes([0xEE; 20]);
    let spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
        .with_code(registry, NATIVE_REGISTRY_CODE.to_vec());
    let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
    let mut runtime = BlockfedRuntime::new();
    runtime.register_native(registry, NativeContract::FlRegistry);

    let mut txs: Vec<_> = keys.iter().map(|k| register_tx(registry, k, 0)).collect();
    txs.push(submit_model_tx(&poisoned, registry, &keys[0], 1));
    let block = chain.build_candidate(addrs[0], txs, 1_000, &mut runtime);
    chain.import(block, &mut runtime).expect("valid block");

    let evidence =
        collect_evidence(&chain, registry, addrs[0], &poisoned).expect("submission on chain");
    println!("\nnon-repudiation evidence for the poisoned model:");
    println!("  author      : {}", evidence.author);
    println!("  model hash  : {}", evidence.model_hash.short());
    println!("  transaction : {}", evidence.tx_hash.short());
    println!("  block       : {}", evidence.block_hash.short());
    match verify_evidence(&chain, &evidence, &poisoned) {
        Ok(()) => println!("  verdict     : VALID — client A cannot deny publishing this model"),
        Err(e) => println!("  verdict     : audit failed: {e}"),
    }
}
