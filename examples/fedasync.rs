//! Full asynchrony: no waiting at all. A FedAsync-style server folds in each
//! local update the moment it arrives, discounted by staleness — the far end
//! of the paper's "wait or not to wait" spectrum, and its future-work
//! question about the optimal number of local updates per peer.
//!
//! ```text
//! cargo run --release --example fedasync
//! ```

use blockfed::data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{AsyncFl, AsyncFlConfig, ClientId, StalenessDecay};
use blockfed::nn::SimpleNnConfig;
use blockfed::report::{fmt_acc, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(5);
    let mut rng = StdRng::seed_from_u64(5);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.7 },
        &mut rng,
    );

    // Client A trains 8x faster than the straggler C — exactly the regime
    // where synchronous FL wastes time and naive asynchrony risks staleness.
    let speeds = vec![8.0, 4.0, 1.0];
    println!(
        "client speeds: A={}, B={}, C={} (relative)\n",
        speeds[0], speeds[1], speeds[2]
    );

    let mut table = Table::new(
        "FedAsync on SynthCifar — mixing rate α × staleness decay",
        &[
            "Alpha",
            "Decay",
            "Final acc",
            "Mean staleness",
            "Merges A/B/C",
        ],
    );
    for &alpha in &[0.3, 0.6, 0.9] {
        for decay in [
            StalenessDecay::Constant,
            StalenessDecay::Polynomial { a: 0.5 },
            StalenessDecay::Polynomial { a: 1.0 },
        ] {
            let config = AsyncFlConfig {
                total_merges: 24,
                local_epochs: 2,
                batch_size: 16,
                lr: 0.1,
                momentum: 0.9,
                alpha,
                decay,
                client_speeds: speeds.clone(),
                eval_every: 24,
                batch_parallel: false,
            };
            let driver = AsyncFl::new(config, &shards, &test);
            let nn = SimpleNnConfig::tiny(test.feature_dim(), test.num_classes());
            let mut arch_rng = StdRng::seed_from_u64(1);
            let mut run_rng = StdRng::seed_from_u64(2);
            let run = driver.run(&mut || nn.build(&mut arch_rng), &mut run_rng);
            let merges = run.merges_by_client(3);
            table.row_owned(vec![
                format!("{alpha:.1}"),
                decay.to_string(),
                fmt_acc(run.final_accuracy),
                format!("{:.2}", run.mean_staleness()),
                format!("{}/{}/{}", merges[0], merges[1], merges[2]),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Fast clients dominate the merge stream; staleness decay keeps the straggler's\n\
         late (but information-rich) updates from dragging the global model backwards.\n\
         Example merge log entry: {:?}",
        example_record()
    );
}

fn example_record() -> (ClientId, &'static str) {
    (ClientId(2), "staleness 5 → weight α·(5+1)^-a")
}
