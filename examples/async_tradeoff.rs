//! The title question, interactively: should a peer wait for all models, or
//! aggregate asynchronously with whatever has arrived?
//!
//! Runs the decentralized system under wait-all / wait-2 / wait-1 and prints
//! the speed-vs-precision frontier.
//!
//! ```text
//! cargo run --release --example async_tradeoff
//! ```

use blockfed::core::{Decentralized, DecentralizedConfig};
use blockfed::data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::WaitPolicy;
use blockfed::nn::SimpleNnConfig;
use blockfed::report::{fmt_acc, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let gen = SynthCifar::new(SynthCifarConfig::default());
    let (train, test) = gen.generate(13);
    let mut rng = StdRng::seed_from_u64(13);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.8 },
        &mut rng,
    );
    let tests = vec![test.clone(), test.clone(), test];
    let nn = SimpleNnConfig::paper();

    let mut table = Table::new(
        "Wait or not to wait — SimpleNN, 3 peers, 5 rounds",
        &[
            "Policy",
            "Mean final accuracy",
            "Mean wait (s)",
            "Makespan (s)",
        ],
    );
    let mut baseline: Option<f64> = None;
    for policy in [
        WaitPolicy::All,
        WaitPolicy::FirstK(2),
        WaitPolicy::FirstK(1),
    ] {
        let config = DecentralizedConfig {
            rounds: 5,
            wait_policy: policy,
            payload_bytes: nn.payload_bytes(),
            ..Default::default()
        };
        let driver = Decentralized::new(config, &shards, &tests);
        let mut arch_rng = StdRng::seed_from_u64(3);
        let run = driver.run(&mut || nn.build(&mut arch_rng));
        let acc = (0..3).map(|p| run.final_accuracy(p)).sum::<f64>() / 3.0;
        let base = *baseline.get_or_insert(acc);
        table.row_owned(vec![
            format!("{policy}"),
            format!("{} ({:+.2} pp)", fmt_acc(acc), (acc - base) * 100.0),
            format!("{:.2}", run.mean_wait().as_secs_f64()),
            format!("{:.1}", run.finished_at.as_secs_f64()),
        ]);
    }
    println!("{table}");
    println!(
        "The paper's answer: for simple models, asynchronous aggregation is a feasible\n\
         option — the accuracy cost is small while the wait drops substantially.\n\
         Complex models want more models in the aggregation (run the `experiments`\n\
         binary for the Efficient-B0 side)."
    );
}
