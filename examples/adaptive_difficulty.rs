//! Adaptive proof-of-work difficulty when the miner population is flexible —
//! the blockchain-side tuning knob §II-A2 points at (Sethi et al., CCNC 2024).
//!
//! Federated participants come and go; every joining peer also mines. A fixed
//! per-block step (Ethereum Homestead) re-targets too slowly, so block cadence
//! — and with it every aggregation wait — drifts. Adaptive controllers restore
//! the 13 s cadence within an epoch or two.
//!
//! ```text
//! cargo run --release --example adaptive_difficulty
//! ```

use blockfed::chain::pow::TARGET_BLOCK_TIME_NS;
use blockfed::chain::{simulate_cadence, DifficultyController, RetargetRule};
use blockfed::report::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let target_s = TARGET_BLOCK_TIME_NS as f64 / 1e9;
    let base = 240_000.0; // three paper-VM peers' pooled hash rate

    // Blocks 0–99: three peers. 100–199: twelve peers (others join the
    // collaboration). 200–299: back to three.
    let schedule = move |b: usize| {
        if (100..200).contains(&b) {
            4.0 * base
        } else {
            base
        }
    };

    let mut table = Table::new(
        format!("Block cadence through a miner-population shock (target {target_s:.0} s)"),
        &[
            "Rule",
            "3 peers (s)",
            "12 peers join (s)",
            "9 peers leave (s)",
        ],
    );
    for rule in [
        RetargetRule::Homestead,
        RetargetRule::MovingAverage { window: 8 },
        RetargetRule::Pi { kp: 0.3, ki: 0.05 },
    ] {
        let mut controller = DifficultyController::new(rule, (base * target_s) as u128);
        let mut rng = StdRng::seed_from_u64(42);
        let intervals = simulate_cadence(&mut controller, schedule, 300, &mut rng);
        let mean = |r: std::ops::Range<usize>| -> f64 {
            intervals[r.clone()].iter().sum::<f64>() / r.len() as f64
        };
        table.row_owned(vec![
            rule.to_string(),
            format!("{:.1}", mean(40..100)),
            format!("{:.1}", mean(140..200)),
            format!("{:.1}", mean(240..300)),
        ]);
    }
    println!("{table}");
    println!(
        "Homestead's ±1/2048-per-block step barely moves in 100 blocks, so cadence sticks\n\
         at ~{:.0} s while the extra miners stay and overshoots after they leave. The\n\
         epochal moving average and the PI controller re-find the target inside a phase.",
        target_s / 4.0
    );
}
