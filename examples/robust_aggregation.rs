//! Robust aggregation under model poisoning: Krum, trimmed mean, median and
//! norm clipping versus plain FedAvg when one of six clients is hostile.
//!
//! ```text
//! cargo run --release --example robust_aggregation
//! ```

use blockfed::fl::robust::{l2_norm, RobustRule};
use blockfed::fl::{Attack, ClientId, ModelUpdate};
use blockfed::report::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let dim = 1_000;
    let mut rng = StdRng::seed_from_u64(11);

    // Five honest clients near a shared optimum; scattered by local data noise.
    let optimum: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let honest = |rng: &mut StdRng| -> Vec<f32> {
        optimum
            .iter()
            .map(|&w| w + rng.gen_range(-0.05..0.05))
            .collect()
    };
    let make_cohort = |attack: Option<&Attack>, rng: &mut StdRng| -> Vec<ModelUpdate> {
        let mut updates: Vec<ModelUpdate> = (0..5)
            .map(|i| ModelUpdate::new(ClientId(i), 1, honest(rng), 100))
            .collect();
        let mut evil = ModelUpdate::new(ClientId(5), 1, honest(rng), 100);
        if let Some(a) = attack {
            a.apply(&mut evil, rng);
        }
        updates.push(evil);
        updates
    };

    let rules = [
        RobustRule::FedAvg,
        RobustRule::Krum { f: 1 },
        RobustRule::MultiKrum { f: 1, m: 3 },
        RobustRule::TrimmedMean { trim: 1 },
        RobustRule::Median,
        RobustRule::ClippedMean {
            max_norm: (l2_norm(&optimum) * 10.0).round() / 10.0,
        },
    ];
    let attacks: Vec<(String, Option<Attack>)> = vec![
        ("none (clean)".into(), None),
        ("scale x100".into(), Some(Attack::Scale { factor: 100.0 })),
        ("sign flip".into(), Some(Attack::SignFlip { scale: 1.0 })),
        (
            "free-rider zeros".into(),
            Some(Attack::Constant { value: 0.0 }),
        ),
    ];

    // Score each rule by how far its aggregate lands from the honest optimum.
    let mut table = Table::new(
        "Distance of the aggregate from the honest optimum (lower is better)",
        &["Rule", "clean", "scale x100", "sign flip", "free-rider"],
    );
    for rule in rules {
        let mut row = vec![rule.to_string()];
        for (_, attack) in &attacks {
            let cohort = make_cohort(attack.as_ref(), &mut rng);
            let refs: Vec<&ModelUpdate> = cohort.iter().collect();
            let agg = rule.apply(&refs).expect("cohort aggregates");
            let dist: f64 = agg
                .iter()
                .zip(&optimum)
                .map(|(&a, &o)| (f64::from(a) - f64::from(o)).powi(2))
                .sum::<f64>()
                .sqrt();
            row.push(format!("{dist:.3}"));
        }
        table.row_owned(row);
    }
    println!("{table}");
    println!(
        "FedAvg is hijacked by the scaling attack; Krum/median/trimmed-mean shrug it off.\n\
         The paper's \"consider\" search defends by *evaluating* candidates instead — \n\
         run `cargo run --release -p blockfed-bench --bin experiments -- poisoning` to compare."
    );
}
