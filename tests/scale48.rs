//! The >32-peer scale unlock, end to end: a 48-peer scenario cell must run
//! green, record aggregates on chain whose combination masks cross the old
//! u32 boundary, replay bit-identically at any worker count, and oversize
//! populations must be rejected gracefully with the typed error instead of
//! a panic.

use blockfed::core::{ConfigError, Decentralized, DecentralizedConfig};
use blockfed::data::{SynthCifar, SynthCifarConfig};
use blockfed::fl::Strategy;
use blockfed::scenario::{CellReport, DataSpec, ScenarioRunner, ScenarioSpec};

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A 48-peer cell whose requested `Consider` is forced through the cutover
/// onto `BestK(40)` — the linear arm, with 40-member aggregates whose masks
/// necessarily span bits ≥ 32.
fn wide_spec() -> ScenarioSpec {
    ScenarioSpec::new("scale48", 48)
        .rounds(2)
        .consider_cutover(6, 40)
        .data(DataSpec::scaled_for(48))
        .seed(4848)
}

#[test]
fn forty_eight_peer_cell_runs_green_with_wide_masks_at_any_thread_count() {
    let _g = thread_guard();
    let spec = wide_spec();
    assert_eq!(
        spec.resolved_strategy(),
        Strategy::BestK(40),
        "48 peers must resolve past the Consider→BestK cutover"
    );
    let run_at = |threads: usize| -> CellReport {
        blockfed::compute::set_threads(threads);
        let cell = ScenarioRunner::new().run(&spec);
        blockfed::compute::set_threads(0);
        cell
    };
    let single = run_at(1);
    // Green end to end: every peer aggregated every round.
    assert_eq!(single.records, 48 * 2, "rounds incomplete: {single:?}");
    assert!(single.mean_final_accuracy > 0.0);
    assert!(single.blocks > 0);
    // The on-chain masks crossed the u32 boundary.
    let widest = single.max_mask_bit.expect("aggregates recorded");
    assert!(
        widest >= 32,
        "no recorded combination mask crossed bit 32 (max {widest})"
    );
    // Same seed, eight workers: bit-identical simulation (report equality
    // already excludes host wall-clock).
    let eight = run_at(8);
    assert_eq!(single, eight, "thread count changed the simulation");
}

#[test]
fn oversize_populations_fail_gracefully_not_by_panic() {
    // The spec engine and the orchestrator reject 1025 peers — one past the
    // mask's native 1024-bit width — with the same typed message.
    let spec_err = ScenarioSpec::new("too-big", 1025)
        .data(DataSpec::scaled_for(1025))
        .validate()
        .unwrap_err();
    assert_eq!(
        spec_err,
        ConfigError::TooManyPeers { got: 1025 }.to_string()
    );

    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (_, test) = gen.generate(1);
    let shards: Vec<_> = (0..1025).map(|_| test.clone()).collect();
    let err = Decentralized::try_new(DecentralizedConfig::default(), &shards, &shards)
        .err()
        .expect("1025 peers must be rejected");
    assert_eq!(err, ConfigError::TooManyPeers { got: 1025 });
    assert_eq!(err.to_string(), spec_err);

    // The whole mask domain is accepted now: 257 (the old ceiling's
    // rejection point) and 1024 both construct.
    for n in [257usize, 1024] {
        let inside: Vec<_> = (0..n).map(|_| test.clone()).collect();
        assert!(
            Decentralized::try_new(DecentralizedConfig::default(), &inside, &inside).is_ok(),
            "{n} peers must be accepted"
        );
    }
}
