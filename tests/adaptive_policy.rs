//! Adaptive-policy invariance: attaching a controller that never fires must
//! be completely free. A run with `ControllerSpec::noop()` reproduces the
//! static run bit for bit — per-peer records, canonical chain stats, the full
//! folded metric set, and the raw trace bytes — at 1 and 8 compute threads,
//! on calm runs and under a chaos timeline (partition + heal, crash +
//! restart). Controllers that *do* fire (threshold rules, the ε-greedy
//! bandit) draw only from their dedicated RNG stream, so controlled runs are
//! themselves bit-identical at any thread count.

use blockfed::core::{
    ComputeProfile, ControllerSpec, Decentralized, DecentralizedConfig, Fault, TimedFault,
};
use blockfed::data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::nn::SimpleNnConfig;
use blockfed::telemetry::MemorySink;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn world(n: usize, seed: u64) -> (Vec<Dataset>, Vec<Dataset>) {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let shards = partition_dataset(&train, n, Partition::Iid, &mut rng);
    (shards, vec![test; n])
}

/// The chaos timeline from the fork-replay suite: a partition cutting
/// in-flight deliveries, a heal, and a crash + restart of the last peer.
fn chaos_faults(n: usize) -> Vec<TimedFault> {
    vec![
        TimedFault::at_secs(
            0.5,
            Fault::Partition {
                left: vec![0],
                right: (1..n).collect(),
            },
        ),
        TimedFault::at_secs(4.0, Fault::HealAll),
        TimedFault::at_secs(1.0, Fault::PeerCrash { peer: n - 1 }),
        TimedFault::at_secs(9.0, Fault::PeerRestart { peer: n - 1 }),
    ]
}

/// Everything a run can disagree on: records, chain stats, metrics, settle
/// time, traffic meters, the decision log, and the raw trace bytes.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    records: Vec<Vec<blockfed::core::PeerRoundRecord>>,
    chain: blockfed::core::ChainStats,
    metrics: blockfed::telemetry::MetricSet,
    finished_at: blockfed::sim::SimTime,
    gossip_bytes: u64,
    fetch_bytes: u64,
    policy_events: Vec<blockfed::core::PolicyEvent>,
    trace: String,
}

fn run_once(n: usize, seed: u64, chaos: bool, controller: Option<ControllerSpec>) -> Fingerprint {
    let cfg = DecentralizedConfig {
        rounds: 2,
        local_epochs: 1,
        batch_size: 16,
        lr: 0.1,
        payload_bytes: 10_000,
        difficulty: 200_000,
        compute: ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
            batch_parallel: false,
        },
        faults: if chaos { chaos_faults(n) } else { Vec::new() },
        controller,
        seed,
        ..Default::default()
    };
    let (shards, tests) = world(n, seed);
    let driver = Decentralized::new(cfg, &shards, &tests);
    let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
    let mut arch_rng = StdRng::seed_from_u64(seed);
    let mut sink = MemorySink::new();
    let run = driver.run_traced(&mut || nn.build(&mut arch_rng), &mut sink);
    Fingerprint {
        records: run.peer_records,
        chain: run.chain,
        metrics: run.metrics,
        finished_at: run.finished_at,
        gossip_bytes: run.gossip_bytes,
        fetch_bytes: run.fetch_bytes,
        policy_events: run.policy_events,
        trace: sink.to_jsonl(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A never-firing controller is invisible: the run is bit-identical to
    /// the static one — trace bytes included — at 1 and 8 threads, with and
    /// without the chaos timeline.
    #[test]
    fn noop_controller_is_bit_identical_to_static_run(
        seed in 0u64..500,
        chaos in any::<bool>(),
    ) {
        let _g = thread_guard();
        let n = 4;
        let mut baseline: Option<Fingerprint> = None;
        for &threads in &THREAD_COUNTS {
            blockfed::compute::set_threads(threads);
            let fp_static = run_once(n, seed, chaos, None);
            let fp_noop = run_once(n, seed, chaos, Some(ControllerSpec::noop()));
            prop_assert!(
                fp_noop.policy_events.is_empty(),
                "noop controller logged a decision"
            );
            prop_assert_eq!(
                fp_noop.metrics.counter("policy_switches"), 0,
                "noop controller metered a switch"
            );
            prop_assert_eq!(
                &fp_noop, &fp_static,
                "noop-controller run diverged at {} threads (chaos={})",
                threads, chaos
            );
            // And every thread count reproduces the same simulation.
            match &baseline {
                None => baseline = Some(fp_static),
                Some(b) => prop_assert_eq!(b, &fp_static, "thread count {} diverged", threads),
            }
        }
        blockfed::compute::set_threads(0);
    }
}

/// A controller that *does* fire draws only from its dedicated RNG stream,
/// so controlled runs — threshold and bandit alike — are bit-identical at 1
/// and 8 threads, calm or chaotic.
#[test]
fn firing_controllers_are_thread_count_invariant() {
    let _g = thread_guard();
    let controllers = [
        ControllerSpec::threshold(Default::default()),
        ControllerSpec::bandit(Default::default()),
    ];
    for ctl in controllers {
        for chaos in [false, true] {
            let mut baseline: Option<Fingerprint> = None;
            for &threads in &THREAD_COUNTS {
                blockfed::compute::set_threads(threads);
                let fp = run_once(4, 11, chaos, Some(ctl.clone()));
                match &baseline {
                    None => baseline = Some(fp),
                    Some(b) => assert_eq!(
                        b, &fp,
                        "{ctl} run diverged at {threads} threads (chaos={chaos})"
                    ),
                }
            }
        }
    }
    blockfed::compute::set_threads(0);
}
