//! Real-thread concurrency tests: the discrete-event simulation is
//! single-threaded by design, so these tests separately verify that the
//! chain substrate is `Send`/`Sync` where it should be and that independent
//! peers running on OS threads converge to one canonical chain when they
//! exchange blocks — the eventual-consistency property total-difficulty fork
//! choice provides.

use blockfed::chain::{Blockchain, GenesisSpec, ImportError, NullRuntime, SealPolicy};
use blockfed::crypto::KeyPair;
use crossbeam::channel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn substrate_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Blockchain>();
    assert_send::<blockfed::chain::Mempool>();
    assert_send::<blockfed::chain::Transaction>();
    assert_send::<blockfed::chain::Block>();
    assert_send::<blockfed::fl::ModelUpdate>();
    assert_send::<blockfed::core::DecentralizedRun>();
}

#[test]
fn substrate_types_are_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Blockchain>();
    assert_sync::<blockfed::chain::Block>();
    assert_sync::<blockfed::fl::ModelUpdate>();
    assert_sync::<blockfed::crypto::KeyPair>();
}

/// Three miner threads, each with its own `Blockchain`, racing to extend the
/// chain and broadcasting every sealed block over crossbeam channels. After
/// the dust settles, all three replicas agree on the head.
#[test]
fn threaded_miners_converge_on_one_canonical_chain() {
    const PEERS: usize = 3;
    const BLOCKS_PER_PEER: u64 = 5;

    let keys: Vec<KeyPair> = (0..PEERS)
        .map(|i| KeyPair::generate(&mut StdRng::seed_from_u64(i as u64)))
        .collect();
    let addrs: Vec<_> = keys.iter().map(KeyPair::address).collect();
    let spec = GenesisSpec::with_accounts(&addrs, 1_000_000_000).with_difficulty(1);

    // Full-mesh broadcast channels.
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..PEERS)
        .map(|_| channel::unbounded::<blockfed::chain::Block>())
        .unzip();

    // A shared, lock-protected log of every block ever sealed (exercises
    // parking_lot::Mutex under contention).
    let sealed_log: Arc<Mutex<Vec<blockfed::crypto::H256>>> = Arc::new(Mutex::new(Vec::new()));

    let handles: Vec<_> = (0..PEERS)
        .map(|me| {
            let spec = spec.clone();
            let my_addr = addrs[me];
            let peers_tx: Vec<_> = senders
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != me)
                .map(|(_, s)| s.clone())
                .collect();
            let my_rx = receivers[me].clone();
            let log = Arc::clone(&sealed_log);
            std::thread::spawn(move || {
                let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
                let mut orphans: Vec<blockfed::chain::Block> = Vec::new();
                for round in 0..BLOCKS_PER_PEER {
                    // Drain incoming blocks (with orphan retry for ordering).
                    while let Ok(block) = my_rx.try_recv() {
                        if let Err(ImportError::UnknownParent(_)) =
                            chain.import(block.clone(), &mut NullRuntime)
                        {
                            orphans.push(block);
                        }
                    }
                    let mut retry = std::mem::take(&mut orphans);
                    while !retry.is_empty() {
                        let before = retry.len();
                        retry.retain(|b| {
                            matches!(
                                chain.import(b.clone(), &mut NullRuntime),
                                Err(ImportError::UnknownParent(_))
                            )
                        });
                        if retry.len() == before {
                            break;
                        }
                    }
                    orphans = retry;

                    // Mine one block on the current head; unique timestamps
                    // per (peer, round) avoid identical-hash collisions.
                    let ts = chain.head_block().header.timestamp_ns
                        + 1_000 * (me as u64 + 1)
                        + round * 17;
                    let block = chain.build_candidate(my_addr, vec![], ts, &mut NullRuntime);
                    chain
                        .import(block.clone(), &mut NullRuntime)
                        .expect("own block imports");
                    log.lock().push(block.hash());
                    for tx in &peers_tx {
                        let _ = tx.send(block.clone());
                    }
                }
                // Final drain: we are done sending, so release our senders and
                // keep importing until every other peer has finished too (the
                // channel disconnects once all senders are dropped). Breaking
                // on a short timeout instead would race slow peers and
                // occasionally miss their last blocks.
                drop(peers_tx);
                while let Ok(block) = my_rx.recv_timeout(std::time::Duration::from_secs(10)) {
                    match chain.import(block.clone(), &mut NullRuntime) {
                        Err(ImportError::UnknownParent(_)) => orphans.push(block),
                        _ => {
                            let mut retry = std::mem::take(&mut orphans);
                            retry.retain(|b| {
                                matches!(
                                    chain.import(b.clone(), &mut NullRuntime),
                                    Err(ImportError::UnknownParent(_))
                                )
                            });
                            orphans = retry;
                        }
                    }
                }
                chain
            })
        })
        .collect();

    // Drop our copies of the senders so the final drains can terminate.
    drop(senders);

    let chains: Vec<Blockchain> = handles
        .into_iter()
        .map(|h| h.join().expect("no panics"))
        .collect();

    // Every peer sealed its blocks and logged them.
    assert_eq!(sealed_log.lock().len(), PEERS * BLOCKS_PER_PEER as usize);

    // All replicas saw every block and therefore agree on the heaviest chain.
    let heads: Vec<_> = chains.iter().map(|c| c.head()).collect();
    assert!(
        heads.iter().all(|h| *h == heads[0]),
        "replicas diverged: {heads:?}"
    );
    // The canonical chain is identical everywhere, block by block.
    let canon0 = chains[0].canonical_chain();
    for c in &chains[1..] {
        assert_eq!(c.canonical_chain(), canon0);
    }
    assert!(
        canon0.len() > BLOCKS_PER_PEER as usize,
        "chain too short: {}",
        canon0.len()
    );
}
