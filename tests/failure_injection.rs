//! Failure-injection integration tests: adversarial peers, malformed payloads,
//! asynchronous policies under attack, and audit behaviour — all on the full
//! decentralized stack through the public API.

use blockfed::core::{Decentralized, DecentralizedConfig};
use blockfed::data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{Adversary, Attack, ClientId, WaitPolicy};
use blockfed::nn::SimpleNnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_world(seed: u64) -> (Vec<Dataset>, Vec<Dataset>) {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.7 },
        &mut rng,
    );
    (shards, vec![test.clone(), test.clone(), test])
}

fn config(seed: u64) -> DecentralizedConfig {
    DecentralizedConfig {
        rounds: 2,
        local_epochs: 2,
        batch_size: 16,
        lr: 0.1,
        difficulty: 200_000,
        seed,
        ..Default::default()
    }
}

fn run(
    cfg: DecentralizedConfig,
    shards: &[Dataset],
    tests: &[Dataset],
    seed: u64,
) -> blockfed::core::DecentralizedRun {
    let driver = Decentralized::new(cfg, shards, tests);
    let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
    let mut arch_rng = StdRng::seed_from_u64(seed);
    driver.run(&mut || nn.build(&mut arch_rng))
}

#[test]
fn two_simultaneous_adversaries_with_defences() {
    let (shards, tests) = tiny_world(21);
    let mut cfg = config(21);
    cfg.adversaries = vec![
        Adversary::new(ClientId(0), Attack::Scale { factor: 80.0 }),
        Adversary::new(ClientId(1), Attack::GaussianNoise { sigma: 5.0 }),
    ];
    cfg.norm_z_threshold = Some(1.2);
    cfg.fitness_threshold = Some(0.3);
    let out = run(cfg, &shards, &tests, 21);
    // The single honest peer still finishes every round.
    assert_eq!(out.peer_records[2].len(), 2);
    // With two of three peers hostile, the honest peer must have dropped or
    // excluded at least one attacker at least once.
    let honest_drops: Vec<_> = out
        .drops()
        .into_iter()
        .filter(|(peer, _, _)| *peer == 2)
        .collect();
    assert!(
        !honest_drops.is_empty(),
        "honest peer never screened anything"
    );
}

#[test]
fn nan_flood_under_async_wait_two_still_completes() {
    let (shards, tests) = tiny_world(22);
    let mut cfg = config(22);
    cfg.wait_policy = WaitPolicy::FirstK(2);
    cfg.adversaries = vec![Adversary::new(
        ClientId(1),
        Attack::NanInjection { fraction: 1.0 },
    )];
    let out = run(cfg, &shards, &tests, 22);
    for (peer, records) in out.peer_records.iter().enumerate() {
        assert_eq!(records.len(), 2, "peer {peer} stalled under NaN flood");
        for r in records {
            // The malformed model can never be aggregated.
            assert!(r.updates_used >= 1);
            assert!(
                !r.chosen.split(',').any(|c| c == "B"),
                "NaN model chosen: {}",
                r.chosen
            );
        }
    }
}

#[test]
fn sleeper_replay_does_not_stall_rounds() {
    let (shards, tests) = tiny_world(23);
    let mut cfg = config(23);
    cfg.rounds = 3;
    cfg.adversaries = vec![Adversary::new(ClientId(2), Attack::Replay).starting_at(2)];
    let out = run(cfg, &shards, &tests, 23);
    for records in &out.peer_records {
        assert_eq!(records.len(), 3);
    }
    // Replays are finite models: they stay aggregatable, so no drops needed.
    assert_eq!(out.trace.count("anomaly.malformed"), 0);
}

#[test]
fn constant_free_rider_is_gated_by_fitness() {
    // IID shards: with the tiny Dirichlet-skewed shards every *honest* solo
    // model also sits at chance on the balanced test, the whole cohort fails
    // the gate, and the fallback adopts the best single model — which can be
    // the free-rider's (an instructive failure mode in its own right, but not
    // what this test is about).
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(24);
    let mut rng = StdRng::seed_from_u64(24);
    let shards = partition_dataset(&train, 3, Partition::Iid, &mut rng);
    let tests = vec![test.clone(), test.clone(), test];
    let mut cfg = config(24);
    // Enough local epochs that honest round-1 models clear the gate.
    cfg.local_epochs = 4;
    cfg.adversaries = vec![Adversary::new(ClientId(0), Attack::Constant { value: 0.0 })];
    // A constant-zero model predicts one class (~chance on 4 classes); the
    // gate sits just above that so honest-but-mediocre models survive.
    cfg.fitness_threshold = Some(0.26);
    let out = run(cfg, &shards, &tests, 24);
    for peer in 1..3 {
        for r in &out.peer_records[peer] {
            assert!(
                !r.chosen.split(',').any(|c| c == "A"),
                "peer {peer} round {} aggregated the free-rider: {}",
                r.round,
                r.chosen
            );
        }
    }
}

#[test]
fn audits_cover_every_published_update_even_under_attack() {
    let (shards, tests) = tiny_world(25);
    let mut cfg = config(25);
    cfg.adversaries = vec![
        Adversary::new(ClientId(0), Attack::SignFlip { scale: 2.0 }),
        Adversary::new(ClientId(1), Attack::NanInjection { fraction: 0.5 }),
    ];
    let out = run(cfg, &shards, &tests, 25);
    assert_eq!(out.audits.len(), out.published_updates.len());
    // Wait-all: every submission confirmed, every audit verifies — including
    // both attackers' poisoned artefacts (that is the non-repudiation point).
    assert!(out.audits.iter().all(|a| a.verified));
}

#[test]
fn heterogeneous_compute_with_attacker_keeps_latency_ladder() {
    use blockfed::core::ComputeProfile;
    let (shards, tests) = tiny_world(26);
    let stragglers = vec![
        ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
        },
        ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
        },
        ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 5.0,
            contention: 0.3,
        },
    ];
    let mut waits = Vec::new();
    for policy in [WaitPolicy::All, WaitPolicy::FirstK(2)] {
        let mut cfg = config(26);
        cfg.wait_policy = policy;
        cfg.per_peer_compute = Some(stragglers.clone());
        cfg.adversaries = vec![Adversary::new(
            ClientId(0),
            Attack::GaussianNoise { sigma: 0.1 },
        )];
        let out = run(cfg, &shards, &tests, 26);
        waits.push(out.mean_wait());
    }
    assert!(
        waits[1] < waits[0],
        "async under attack lost its latency edge: {:?} !< {:?}",
        waits[1],
        waits[0]
    );
}
