//! Failure-injection integration tests: adversarial peers, malformed payloads,
//! asynchronous policies under attack, and audit behaviour — all on the full
//! decentralized stack through the public API.

use blockfed::chain::RetargetRule;
use blockfed::core::{ComputeProfile, Decentralized, DecentralizedConfig, Fault, TimedFault};
use blockfed::data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{Adversary, Attack, ClientId, WaitPolicy};
use blockfed::nn::SimpleNnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_world(seed: u64) -> (Vec<Dataset>, Vec<Dataset>) {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.7 },
        &mut rng,
    );
    (shards, vec![test.clone(), test.clone(), test])
}

fn config(seed: u64) -> DecentralizedConfig {
    DecentralizedConfig {
        rounds: 2,
        local_epochs: 2,
        batch_size: 16,
        lr: 0.1,
        difficulty: 200_000,
        seed,
        ..Default::default()
    }
}

fn run(
    cfg: DecentralizedConfig,
    shards: &[Dataset],
    tests: &[Dataset],
    seed: u64,
) -> blockfed::core::DecentralizedRun {
    let driver = Decentralized::new(cfg, shards, tests);
    let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
    let mut arch_rng = StdRng::seed_from_u64(seed);
    driver.run(&mut || nn.build(&mut arch_rng))
}

#[test]
fn two_simultaneous_adversaries_with_defences() {
    let (shards, tests) = tiny_world(21);
    let mut cfg = config(21);
    cfg.adversaries = vec![
        Adversary::new(ClientId(0), Attack::Scale { factor: 80.0 }),
        Adversary::new(ClientId(1), Attack::GaussianNoise { sigma: 5.0 }),
    ];
    cfg.norm_z_threshold = Some(1.2);
    cfg.fitness_threshold = Some(0.3);
    let out = run(cfg, &shards, &tests, 21);
    // The single honest peer still finishes every round.
    assert_eq!(out.peer_records[2].len(), 2);
    // With two of three peers hostile, the honest peer must have dropped or
    // excluded at least one attacker at least once.
    let honest_drops: Vec<_> = out
        .drops()
        .into_iter()
        .filter(|(peer, _, _)| *peer == 2)
        .collect();
    assert!(
        !honest_drops.is_empty(),
        "honest peer never screened anything"
    );
}

#[test]
fn nan_flood_under_async_wait_two_still_completes() {
    let (shards, tests) = tiny_world(22);
    let mut cfg = config(22);
    cfg.wait_policy = WaitPolicy::FirstK(2);
    cfg.adversaries = vec![Adversary::new(
        ClientId(1),
        Attack::NanInjection { fraction: 1.0 },
    )];
    let out = run(cfg, &shards, &tests, 22);
    for (peer, records) in out.peer_records.iter().enumerate() {
        assert_eq!(records.len(), 2, "peer {peer} stalled under NaN flood");
        for r in records {
            // The malformed model can never be aggregated.
            assert!(r.updates_used >= 1);
            assert!(
                !r.chosen.split(',').any(|c| c == "B"),
                "NaN model chosen: {}",
                r.chosen
            );
        }
    }
}

#[test]
fn sleeper_replay_does_not_stall_rounds() {
    let (shards, tests) = tiny_world(23);
    let mut cfg = config(23);
    cfg.rounds = 3;
    cfg.adversaries = vec![Adversary::new(ClientId(2), Attack::Replay).starting_at(2)];
    let out = run(cfg, &shards, &tests, 23);
    for records in &out.peer_records {
        assert_eq!(records.len(), 3);
    }
    // Replays are finite models: they stay aggregatable, so no drops needed.
    assert_eq!(out.trace.count("anomaly.malformed"), 0);
}

#[test]
fn constant_free_rider_is_gated_by_fitness() {
    // IID shards: with the tiny Dirichlet-skewed shards every *honest* solo
    // model also sits at chance on the balanced test, the whole cohort fails
    // the gate, and the fallback adopts the best single model — which can be
    // the free-rider's (an instructive failure mode in its own right, but not
    // what this test is about).
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(24);
    let mut rng = StdRng::seed_from_u64(24);
    let shards = partition_dataset(&train, 3, Partition::Iid, &mut rng);
    let tests = vec![test.clone(), test.clone(), test];
    let mut cfg = config(24);
    // Enough local epochs that honest round-1 models clear the gate.
    cfg.local_epochs = 4;
    cfg.adversaries = vec![Adversary::new(ClientId(0), Attack::Constant { value: 0.0 })];
    // A constant-zero model predicts one class (~chance on 4 classes); the
    // gate sits just above that so honest-but-mediocre models survive.
    cfg.fitness_threshold = Some(0.26);
    let out = run(cfg, &shards, &tests, 24);
    for peer in 1..3 {
        for r in &out.peer_records[peer] {
            assert!(
                !r.chosen.split(',').any(|c| c == "A"),
                "peer {peer} round {} aggregated the free-rider: {}",
                r.round,
                r.chosen
            );
        }
    }
}

#[test]
fn audits_cover_every_published_update_even_under_attack() {
    let (shards, tests) = tiny_world(25);
    let mut cfg = config(25);
    cfg.adversaries = vec![
        Adversary::new(ClientId(0), Attack::SignFlip { scale: 2.0 }),
        Adversary::new(ClientId(1), Attack::NanInjection { fraction: 0.5 }),
    ];
    let out = run(cfg, &shards, &tests, 25);
    assert_eq!(out.audits.len(), out.published_updates.len());
    // Wait-all: every submission confirmed, every audit verifies — including
    // both attackers' poisoned artefacts (that is the non-repudiation point).
    assert!(out.audits.iter().all(|a| a.verified));
}

/// Runs a long, straggler-slow 3-peer round schedule whose miners all get a
/// 4× hash-rate shock at `shock_at` seconds, under the given retarget rule,
/// and returns `(target_interval, post_shock_tail_mean_interval)` in
/// virtual seconds. The target is the cadence the configured difficulty
/// implies against the genesis hash rate — the cadence the adaptive rules
/// defend.
fn shocked_cadence(rule: RetargetRule, seed: u64) -> (f64, f64) {
    let (shards, tests) = tiny_world(seed);
    let shock_at = 4.0;
    let compute = ComputeProfile {
        hashrate: 100_000.0,
        // Slow training keeps the run alive for tens of seconds after the
        // shock, leaving the controller room to re-converge.
        train_rate: 5.0,
        contention: 0.3,
        batch_parallel: false,
    };
    let mut cfg = config(seed);
    cfg.compute = compute;
    cfg.retarget = rule;
    cfg.faults = (0..3)
        .map(|p| {
            TimedFault::at_secs(
                shock_at,
                Fault::HashRateShock {
                    peer: p,
                    factor: 4.0,
                },
            )
        })
        .collect();
    let difficulty = cfg.difficulty as f64;
    let out = run(cfg, &shards, &tests, seed);

    // Everyone trains throughout, so the genesis (and pre-shock) hash rate
    // is three contention-reduced miners.
    let rate = 3.0 * compute.effective_hashrate(true);
    let target = difficulty / rate;

    let seals: Vec<f64> = out
        .trace
        .with_label("block.sealed")
        .map(|e| e.time.as_secs_f64())
        .collect();
    let post: Vec<f64> = seals
        .windows(2)
        .filter(|w| w[0] > shock_at + 2.0 * target) // let the shock settle in
        .map(|w| w[1] - w[0])
        .collect();
    assert!(
        post.len() >= 12,
        "{rule}: only {} post-shock intervals; run too short",
        post.len()
    );
    // The tail, where an adaptive rule has had time to act.
    let tail = &post[post.len() / 2..];
    (target, tail.iter().sum::<f64>() / tail.len() as f64)
}

#[test]
fn pi_retarget_restores_cadence_after_hash_shock_homestead_does_not() {
    // A 4× hash-rate shock makes blocks 4× too fast at fixed difficulty.
    // The PI controller must pull the tail cadence back within 2× of the
    // configured target; Homestead's ±1/2048 fixed step cannot.
    let (target, pi_tail) = shocked_cadence(RetargetRule::Pi { kp: 0.3, ki: 0.05 }, 27);
    assert!(
        pi_tail >= target / 2.0 && pi_tail <= target * 2.0,
        "pi tail cadence {pi_tail:.3}s escaped [{:.3}, {:.3}]",
        target / 2.0,
        target * 2.0
    );

    let (target, homestead_tail) = shocked_cadence(RetargetRule::Homestead, 27);
    assert!(
        homestead_tail < target / 2.0,
        "homestead unexpectedly recovered: tail {homestead_tail:.3}s vs target {target:.3}s"
    );
    // And the adaptive rule's cadence error is strictly smaller.
    assert!((pi_tail - target).abs() < (homestead_tail - target).abs());
}

#[test]
fn heterogeneous_compute_with_attacker_keeps_latency_ladder() {
    let (shards, tests) = tiny_world(26);
    let stragglers = vec![
        ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
            batch_parallel: false,
        },
        ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
            batch_parallel: false,
        },
        ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 5.0,
            contention: 0.3,
            batch_parallel: false,
        },
    ];
    let mut waits = Vec::new();
    for policy in [WaitPolicy::All, WaitPolicy::FirstK(2)] {
        let mut cfg = config(26);
        cfg.wait_policy = policy;
        cfg.per_peer_compute = Some(stragglers.clone());
        cfg.adversaries = vec![Adversary::new(
            ClientId(0),
            Attack::GaussianNoise { sigma: 0.1 },
        )];
        let out = run(cfg, &shards, &tests, 26);
        waits.push(out.mean_wait());
    }
    assert!(
        waits[1] < waits[0],
        "async under attack lost its latency edge: {:?} !< {:?}",
        waits[1],
        waits[0]
    );
}
