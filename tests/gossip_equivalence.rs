//! Property tests of the gossip-mode contract: `AnnounceFetch`, `Full`, and
//! `Epidemic` must drive *identical* simulations — the same artifact set
//! delivered to every live peer, the same per-round records, the same chain —
//! under randomized churn and timed partitions, while announce/fetch always
//! floods strictly fewer bytes than full-payload flooding and epidemic
//! fan-out undercuts even the announce floods once the mesh is wide.

use blockfed::core::{
    ComputeProfile, Decentralized, DecentralizedConfig, DecentralizedRun, Fault, TimedFault,
};
use blockfed::data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::WaitPolicy;
use blockfed::net::{GossipMode, ANNOUNCE_BYTES};
use blockfed::nn::SimpleNnConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world(n: usize, seed: u64) -> (Vec<Dataset>, Vec<Dataset>) {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let shards = partition_dataset(&train, n, Partition::Iid, &mut rng);
    (shards, vec![test; n])
}

fn base_config(seed: u64, rounds: u32, payload: u64) -> DecentralizedConfig {
    DecentralizedConfig {
        rounds,
        local_epochs: 1,
        batch_size: 16,
        lr: 0.1,
        payload_bytes: payload,
        difficulty: 200_000,
        compute: ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
            batch_parallel: false,
        },
        seed,
        ..Default::default()
    }
}

fn run(mut cfg: DecentralizedConfig, mode: GossipMode, n: usize, seed: u64) -> DecentralizedRun {
    cfg.gossip = mode;
    let (shards, tests) = world(n, seed);
    let driver = Decentralized::new(cfg, &shards, &tests);
    let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
    let mut arch_rng = StdRng::seed_from_u64(seed);
    driver.run(&mut || nn.build(&mut arch_rng))
}

/// The fault-timeline generator: an optional partition-plus-heal isolating
/// peer 0 mid-run, and an optional crash-stop of the last peer — composable
/// churn that exercises in-flight drops, on-demand payload fetches, and the
/// wait-policy re-measurement paths.
fn timeline(
    n: usize,
    partition_on: bool,
    t1: f64,
    dt: f64,
    leave_on: bool,
    leave_at: f64,
) -> Vec<TimedFault> {
    let mut out = Vec::new();
    if partition_on {
        out.push(TimedFault::at_secs(
            t1,
            Fault::Partition {
                left: vec![0],
                right: (1..n).collect(),
            },
        ));
        out.push(TimedFault::at_secs(t1 + dt, Fault::HealAll));
    }
    if leave_on {
        out.push(TimedFault::at_secs(
            leave_at,
            Fault::PeerLeave { peer: n - 1 },
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under randomized churn + timed partitions, both modes deliver the
    /// identical artifact set to every live peer and produce the identical
    /// simulation — records, chain, settle time — while announce/fetch
    /// floods strictly fewer bytes.
    #[test]
    fn modes_agree_under_churn_and_partitions(
        n in 3usize..6,
        partition_on in any::<bool>(),
        t1 in 0.05f64..2.0,
        dt in 2.0f64..6.0,
        leave_on in any::<bool>(),
        leave_at in 0.1f64..2.0,
        seed in 0u64..500,
    ) {
        let mut cfg = base_config(seed, 2, 10_000);
        cfg.wait_policy = WaitPolicy::All;
        cfg.faults = timeline(n, partition_on, t1, dt, leave_on, leave_at);
        let full = run(cfg.clone(), GossipMode::Full, n, seed);
        let af = run(cfg, GossipMode::AnnounceFetch, n, seed);
        // Identical artifact inventory on every peer (live peers included by
        // construction; departed peers froze at the same point either way).
        prop_assert_eq!(&full.artifacts, &af.artifacts);
        prop_assert_eq!(&full.peer_records, &af.peer_records);
        prop_assert_eq!(&full.chain, &af.chain);
        prop_assert_eq!(full.finished_at, af.finished_at);
        prop_assert_eq!(full.blocks_sealed, af.blocks_sealed);
        // Traffic split: Full folds everything into flood bytes;
        // announce/fetch floods digests and pulls payloads.
        prop_assert_eq!(full.fetch_bytes, 0);
        prop_assert!(af.fetch_bytes > 0);
        prop_assert!(
            af.gossip_bytes < full.gossip_bytes,
            "announce floods not cheaper: {} !< {}",
            af.gossip_bytes,
            full.gossip_bytes
        );
    }

    /// On every fault-free N ≥ 3 mesh cell, announce/fetch gossip bytes are
    /// strictly below full-flood gossip bytes for any payload above the
    /// announcement size.
    #[test]
    fn announce_fetch_floods_less_on_every_mesh(
        n in 3usize..9,
        payload in (ANNOUNCE_BYTES + 1)..40_000u64,
        seed in 0u64..500,
    ) {
        let cfg = base_config(seed, 1, payload);
        let full = run(cfg.clone(), GossipMode::Full, n, seed);
        let af = run(cfg, GossipMode::AnnounceFetch, n, seed);
        prop_assert!(
            af.gossip_bytes < full.gossip_bytes,
            "n={} payload={}: {} !< {}",
            n,
            payload,
            af.gossip_bytes,
            full.gossip_bytes
        );
        // The payload still reaches every peer — as targeted pulls.
        prop_assert!(af.fetch_bytes >= payload * (n as u64 - 1));
        prop_assert_eq!(&full.artifacts, &af.artifacts);
        prop_assert_eq!(&full.peer_records, &af.peer_records);
    }

    /// On every fault-free N ≥ 3 mesh cell, epidemic fan-out delivers the
    /// identical simulation as announce/fetch — same artifacts, records,
    /// chain, settle time — for any fanout. Only the traffic accounting may
    /// differ: that is the whole gossip-mode contract.
    #[test]
    fn epidemic_agrees_with_announce_fetch_on_every_mesh(
        n in 3usize..9,
        fanout in 1usize..5,
        payload in (ANNOUNCE_BYTES + 1)..40_000u64,
        seed in 0u64..500,
    ) {
        let cfg = base_config(seed, 1, payload);
        let af = run(cfg.clone(), GossipMode::AnnounceFetch, n, seed);
        let epi = run(cfg, GossipMode::Epidemic { fanout }, n, seed);
        prop_assert_eq!(&af.artifacts, &epi.artifacts);
        prop_assert_eq!(&af.peer_records, &epi.peer_records);
        prop_assert_eq!(&af.chain, &epi.chain);
        prop_assert_eq!(af.finished_at, epi.finished_at);
        prop_assert_eq!(af.blocks_sealed, epi.blocks_sealed);
        // Bodies still reach every peer — as targeted pulls.
        prop_assert!(epi.fetch_bytes >= payload * (n as u64 - 1));
    }
}

/// At 48 peers the announce term itself scales with the flood tree's edge
/// count; epidemic fan-out caps transmissions per rumor at `fanout` per
/// infected node, so its gossip bytes drop strictly below announce/fetch —
/// while the simulation stays bit-identical.
#[test]
fn epidemic_undercuts_announce_fetch_gossip_at_48_peers() {
    let n = 48;
    let seed = 4_848;
    let mut cfg = base_config(seed, 1, 10_000);
    cfg.strategy = blockfed::fl::Strategy::BestK(3);
    let af = run(cfg.clone(), GossipMode::AnnounceFetch, n, seed);
    for fanout in [2, 3] {
        let epi = run(cfg.clone(), GossipMode::Epidemic { fanout }, n, seed);
        assert_eq!(af.artifacts, epi.artifacts);
        assert_eq!(af.peer_records, epi.peer_records);
        assert_eq!(af.chain, epi.chain);
        assert_eq!(af.finished_at, epi.finished_at);
        assert!(
            epi.gossip_bytes < af.gossip_bytes,
            "fanout {fanout}: epidemic announcements not cheaper: {} !< {}",
            epi.gossip_bytes,
            af.gossip_bytes
        );
    }
}
