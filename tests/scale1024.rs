//! The 1024-peer unlock, end to end: hierarchical committee aggregation plus
//! epidemic announcement fan-out carry a cell four times past the old
//! 256-peer mask ceiling. The cell must run green (every peer merges every
//! round), confirm on-chain masks with bits ≥ 256 (impossible before the
//! widening), replay bit-identically at any worker count, and reject the
//! 1025th peer with the orchestrator's typed error instead of a panic.

use blockfed::core::CommitteeSpec;
use blockfed::fl::Strategy;
use blockfed::net::GossipMode;
use blockfed::scenario::{CellReport, DataSpec, ScenarioRunner, ScenarioSpec};

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A 1024-peer cell sharded into 16 contiguous committees of 64. Tier-1
/// aggregation stays linear via `BestK(48)` inside each committee; the tier-2
/// merge records a union mask over every participating member, so bits in
/// the top committees (indices ≥ 960) are guaranteed on chain. Difficulty
/// scales with the population so block cadence stays at the 48-peer cell's
/// level, and epidemic fan-out keeps announcement traffic off the
/// edge-count curve.
fn committee_spec() -> ScenarioSpec {
    ScenarioSpec::new("scale1024", 1024)
        .rounds(1)
        .consider_cutover(6, 48)
        .difficulty(200_000 * 1024 / 48)
        .gossip(GossipMode::Epidemic { fanout: 3 })
        .committees(CommitteeSpec::contiguous(16))
        .data(DataSpec::scaled_for(1024))
        .seed(102_400)
}

#[test]
fn thousand_peer_committee_cell_runs_green_with_wide_masks_at_any_thread_count() {
    let _g = thread_guard();
    let spec = committee_spec();
    assert_eq!(
        spec.resolved_strategy(),
        Strategy::BestK(48),
        "1024 peers must resolve past the Consider→BestK cutover"
    );
    let run_at = |threads: usize| -> CellReport {
        blockfed::compute::set_threads(threads);
        let cell = ScenarioRunner::new().run(&spec);
        blockfed::compute::set_threads(0);
        cell
    };
    let single = run_at(1);
    // Green end to end: every peer merged the round.
    assert_eq!(single.records, 1024, "round incomplete: {single:?}");
    assert_eq!(
        single.committee_rounds(),
        1024,
        "every peer must complete a tier-2 merge: {single:?}"
    );
    assert!(single.mean_final_accuracy > 0.0);
    assert!(single.blocks > 0);
    // The on-chain masks addressed the region past the old 256-bit ceiling.
    let widest = single.max_mask_bit.expect("aggregates recorded");
    assert!(
        widest >= 256,
        "no recorded combination mask crossed bit 256 (max {widest})"
    );
    // The committee tier metered its own traffic, and epidemic announcements
    // keep the flood term below the pulled payloads.
    assert!(single.tier2_gossip_bytes() > 0);
    assert!(single.tier2_gossip_bytes() <= single.gossip_bytes);
    assert!(single.tier2_fetch_bytes() <= single.fetch_bytes);
    assert!(
        single.gossip_bytes < single.fetch_bytes,
        "epidemic announcements must undercut the pulled payloads: gossip {} !< fetch {}",
        single.gossip_bytes,
        single.fetch_bytes
    );
    // Same seed, eight workers: bit-identical simulation (report equality
    // already excludes host wall-clock).
    let eight = run_at(8);
    assert_eq!(single, eight, "thread count changed the simulation");
}

#[test]
fn the_1025th_peer_is_rejected_gracefully_at_the_new_boundary() {
    // One past the widened ceiling: the spec refuses with the orchestrator's
    // exact typed-error words — no panic, no truncation.
    let over = ScenarioSpec::new("over", 1025)
        .data(DataSpec::scaled_for(1025))
        .validate()
        .unwrap_err();
    assert!(over.contains("at most 1024 peers"), "{over}");
    assert_eq!(
        over,
        blockfed::core::ConfigError::TooManyPeers { got: 1025 }.to_string()
    );
    // The ceiling itself is fine — 1024 peers validate.
    ScenarioSpec::new("at-cap", 1024)
        .committees(CommitteeSpec::contiguous(16))
        .data(DataSpec::scaled_for(1024))
        .validate()
        .unwrap();
}
