//! Thread-sweep equivalence suite for batch-parallel training.
//!
//! `Sequential::par_train_batch` splits every mini-batch into the fixed
//! gradient-shard plan (`blockfed_nn::train_shards`, a pure function of the
//! batch size) and fans the shards across `blockfed-compute` workers on
//! per-worker model replicas, reducing gradients in shard order before one
//! optimizer step. The contract proven here: the parallel loop produces
//! **bit-identical** `params_flat()` to the sequential `train_epochs` loop at
//! `BLOCKFED_THREADS` ∈ {1, 2, 8} — including batch sizes that do not divide
//! evenly across workers — and a paper-scale scenario cell that trains
//! through the parallel loop replays bit-identically at 1 and 8 threads.

use blockfed::data::{Batcher, SynthCifar, SynthCifarConfig};
use blockfed::nn::{train_shards, Sequential, Sgd, SimpleNnConfig};
use blockfed::scenario::{CellReport, DataSpec, ScenarioRunner, ScenarioSpec};
use blockfed::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn param_bits(model: &Sequential) -> Vec<u32> {
    model.params_flat().iter().map(|p| p.to_bits()).collect()
}

/// A random but seeded classification batch of `n` examples.
fn random_batch(rng: &mut StdRng, n: usize, dim: usize, classes: usize) -> (Tensor, Vec<usize>) {
    let features = Tensor::from_vec(
        (0..n * dim).map(|_| rng.gen_range(-1.5..1.5)).collect(),
        &[n, dim],
    );
    let labels = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    (features, labels)
}

fn tiny_model(seed: u64, dim: usize, classes: usize) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    SimpleNnConfig::tiny(dim, classes).build(&mut rng)
}

/// Trains one model with `train_batch` and one with `par_train_batch` on the
/// same fixed batch for `steps` steps and asserts bit-identical parameters.
fn assert_batch_equivalence(n: usize, seed: u64) {
    let (dim, classes) = (9, 3);
    let mut data_rng = StdRng::seed_from_u64(seed);
    let (features, labels) = random_batch(&mut data_rng, n, dim, classes);

    // Reference: the sequential loop at one thread.
    blockfed::compute::set_threads(1);
    let mut reference = tiny_model(seed ^ 7, dim, classes);
    let mut opt = Sgd::new(0.05, 0.9);
    for _ in 0..2 {
        reference.train_batch(&features, &labels, &mut opt);
    }
    let want = param_bits(&reference);

    for threads in THREAD_COUNTS {
        blockfed::compute::set_threads(threads);
        // The parallel loop…
        let mut par = tiny_model(seed ^ 7, dim, classes);
        let mut opt = Sgd::new(0.05, 0.9);
        for _ in 0..2 {
            par.par_train_batch(&features, &labels, &mut opt);
        }
        assert_eq!(
            param_bits(&par),
            want,
            "par_train_batch diverged at {threads} threads, batch {n}"
        );
        // …and the sequential loop must both be thread-count invariant.
        let mut seq = tiny_model(seed ^ 7, dim, classes);
        let mut opt = Sgd::new(0.05, 0.9);
        for _ in 0..2 {
            seq.train_batch(&features, &labels, &mut opt);
        }
        assert_eq!(
            param_bits(&seq),
            want,
            "train_batch diverged at {threads} threads, batch {n}"
        );
    }
    blockfed::compute::set_threads(0);
}

#[test]
fn par_train_batch_bit_matches_sequential_across_thread_sweep() {
    let _g = thread_guard();
    // Batch sizes around every shard-plan boundary: single shard (< 16),
    // exact multiples, and sizes that split unevenly across 2 and 8 workers.
    for (i, n) in [5usize, 15, 16, 17, 31, 32, 33, 64, 65, 100]
        .iter()
        .enumerate()
    {
        assert_batch_equivalence(*n, 900 + i as u64);
    }
}

#[test]
fn par_train_epochs_bit_matches_train_epochs_on_real_data() {
    let _g = thread_guard();
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, _) = gen.generate(3);
    let dim = train.feature_dim();
    let classes = train.num_classes();

    let run = |threads: usize, parallel: bool| -> (Vec<f32>, Vec<u32>) {
        blockfed::compute::set_threads(threads);
        let mut model = tiny_model(11, dim, classes);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(12);
        let batcher = Batcher::new(20); // 80 examples → 16-row runt batch
        let losses = if parallel {
            model.par_train_epochs(&train, 3, &batcher, &mut opt, &mut rng)
        } else {
            model.train_epochs(&train, 3, &batcher, &mut opt, &mut rng)
        };
        blockfed::compute::set_threads(0);
        (losses, param_bits(&model))
    };

    let (want_losses, want_bits) = run(1, false);
    for threads in THREAD_COUNTS {
        let (par_losses, par_bits) = run(threads, true);
        assert_eq!(par_losses, want_losses, "losses diverged at {threads}");
        assert_eq!(par_bits, want_bits, "params diverged at {threads}");
        let (seq_losses, seq_bits) = run(threads, false);
        assert_eq!(seq_losses, want_losses);
        assert_eq!(seq_bits, want_bits);
    }
}

#[test]
fn par_evaluate_and_predict_are_thread_count_invariant() {
    let _g = thread_guard();
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(5);
    blockfed::compute::set_threads(1);
    let mut model = tiny_model(21, train.feature_dim(), train.num_classes());
    let mut opt = Sgd::new(0.1, 0.9);
    let mut rng = StdRng::seed_from_u64(22);
    model.train_epochs(&train, 2, &Batcher::new(16), &mut opt, &mut rng);
    let want_eval = model.evaluate(&test);
    let want_pred = model.predict(test.features());
    for threads in THREAD_COUNTS {
        blockfed::compute::set_threads(threads);
        assert_eq!(model.par_evaluate(&test), want_eval, "eval @ {threads}");
        assert_eq!(model.evaluate(&test), want_eval);
        assert_eq!(model.par_predict(test.features()), want_pred);
    }
    blockfed::compute::set_threads(0);
}

#[test]
fn paper_scale_cell_trains_bit_identically_at_1_and_8_threads() {
    let _g = thread_guard();
    // The same preset the `--paper` CI cell runs: 3 peers training the
    // ~62 K-parameter SimpleNN on the full SynthCifar generator through the
    // batch-parallel loop — no synthesized tiny data anywhere.
    let spec = ScenarioSpec::paper_cell("paper-scale", 3);
    assert_eq!(spec.data, DataSpec::paper(), "full-generator data");
    assert!(
        spec.effective_computes().iter().all(|c| c.batch_parallel),
        "the cell must train through par_train_epochs"
    );
    assert_eq!(spec.model, SimpleNnConfig::paper(), "paper-scale model");
    spec.validate().unwrap();
    let run_at = |threads: usize| -> CellReport {
        blockfed::compute::set_threads(threads);
        let cell = ScenarioRunner::new().run(&spec);
        blockfed::compute::set_threads(0);
        cell
    };
    let single = run_at(1);
    assert_eq!(single.records, 3 * 2, "every peer, every round: {single:?}");
    assert!(
        single.mean_final_accuracy > 0.15,
        "paper-scale model learned nothing: {single:?}"
    );
    // Accuracy, params, chain, gossip — the whole report — must replay
    // bit-identically with eight workers (CellReport equality already
    // excludes host wall-clock).
    let eight = run_at(8);
    assert_eq!(single, eight, "thread count changed the simulation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batch sizes drawn to include every ragged split: shards of unequal
    /// length, more workers than shards, runt shards under MIN_SHARD_ROWS.
    #[test]
    fn par_training_equivalence_on_ragged_batch_sizes(
        n in 1usize..=97,
        seed in 0u64..500,
    ) {
        let _g = thread_guard();
        // Sanity: the plan is always an exact partition of the batch.
        let plan = train_shards(n);
        let covered: usize = plan.iter().map(|r| r.end - r.start).sum();
        prop_assert_eq!(covered, n);
        assert_batch_equivalence(n, seed);
    }
}
