//! Chaos property suite: randomized packet loss (0–20%), timed partitions,
//! churn, and crash–restart faults, all at once. Every sampled run must
//! terminate — either settling through the fetch retry machinery or failing
//! fast through the liveness watchdog — and the two gossip modes must still
//! drive identical simulations (same chains, records, artifacts, drop and
//! retry meters) no matter what the network does to them. A lossy chaotic
//! cell is also bit-identical at 1 and 8 compute threads: loss sampling lives
//! in the single-threaded event loop, never in the parallel training region.

use blockfed::core::{
    ComputeProfile, Decentralized, DecentralizedConfig, DecentralizedRun, Fault, TimedFault,
};
use blockfed::data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::WaitPolicy;
use blockfed::net::GossipMode;
use blockfed::nn::SimpleNnConfig;
use blockfed::scenario::{ScenarioRunner, ScenarioSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn world(n: usize, seed: u64) -> (Vec<Dataset>, Vec<Dataset>) {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let shards = partition_dataset(&train, n, Partition::Iid, &mut rng);
    (shards, vec![test; n])
}

fn base_config(seed: u64, rounds: u32, loss: f64) -> DecentralizedConfig {
    let mut cfg = DecentralizedConfig {
        rounds,
        local_epochs: 1,
        batch_size: 16,
        lr: 0.1,
        wait_policy: WaitPolicy::All,
        payload_bytes: 10_000,
        difficulty: 200_000,
        compute: ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
            batch_parallel: false,
        },
        seed,
        ..Default::default()
    };
    cfg.link.loss_rate = loss;
    cfg
}

fn run(mut cfg: DecentralizedConfig, mode: GossipMode, n: usize, seed: u64) -> DecentralizedRun {
    cfg.gossip = mode;
    let (shards, tests) = world(n, seed);
    let driver = Decentralized::new(cfg, &shards, &tests);
    let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
    let mut arch_rng = StdRng::seed_from_u64(seed);
    driver.run(&mut || nn.build(&mut arch_rng))
}

/// The chaos timeline: an optional partition-plus-heal isolating peer 0, and
/// an optional crash–restart cycle on the last peer — layered on top of
/// whatever per-edge loss the link already applies.
fn chaos_timeline(
    n: usize,
    partition_on: bool,
    t1: f64,
    dt: f64,
    crash_on: bool,
    crash_t: f64,
    down: f64,
) -> Vec<TimedFault> {
    let mut out = Vec::new();
    if partition_on {
        out.push(TimedFault::at_secs(
            t1,
            Fault::Partition {
                left: vec![0],
                right: (1..n).collect(),
            },
        ));
        out.push(TimedFault::at_secs(t1 + dt, Fault::HealAll));
    }
    if crash_on {
        out.push(TimedFault::at_secs(
            crash_t,
            Fault::PeerCrash { peer: n - 1 },
        ));
        out.push(TimedFault::at_secs(
            crash_t + down,
            Fault::PeerRestart { peer: n - 1 },
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any mix of loss, partition, and crash–restart terminates (the default
    /// watchdog is the backstop) and leaves both gossip modes in byte-perfect
    /// agreement: identical chains, records, artifact inventories, settle
    /// times, and resilience meters.
    #[test]
    fn chaos_runs_terminate_and_modes_converge(
        n in 3usize..6,
        loss in 0.0f64..0.20,
        partition_on in any::<bool>(),
        t1 in 0.05f64..2.0,
        dt in 2.0f64..6.0,
        crash_on in any::<bool>(),
        crash_t in 0.1f64..3.0,
        down in 5.0f64..15.0,
        seed in 0u64..500,
    ) {
        let mut cfg = base_config(seed, 2, loss);
        cfg.faults = chaos_timeline(n, partition_on, t1, dt, crash_on, crash_t, down);
        let full = run(cfg.clone(), GossipMode::Full, n, seed);
        let af = run(cfg, GossipMode::AnnounceFetch, n, seed);
        // Returning at all is the termination proof (the watchdog bounds any
        // genuine stall); a stall must be reported identically either way.
        prop_assert_eq!(full.stall.as_deref(), af.stall.as_deref());
        // Identical simulations, meter for meter.
        prop_assert_eq!(&full.chain, &af.chain);
        prop_assert_eq!(&full.peer_records, &af.peer_records);
        prop_assert_eq!(&full.artifacts, &af.artifacts);
        prop_assert_eq!(full.finished_at, af.finished_at);
        prop_assert_eq!(full.blocks_sealed, af.blocks_sealed);
        prop_assert_eq!(&full.metrics, &af.metrics);
        // The traffic split is the only divergence.
        prop_assert_eq!(full.fetch_bytes, 0);
    }

    /// A lossy chaotic scenario cell replays bit-identically whether local
    /// training runs on 1 thread or 8.
    #[test]
    fn lossy_chaos_cells_are_bit_identical_across_thread_counts(
        loss in 0.01f64..0.20,
        seed in 0u64..100,
    ) {
        let _g = thread_guard();
        let spec = ScenarioSpec::new("chaos", 5)
            .rounds(2)
            .loss(loss)
            .partition_at(1.0, &[0], &[1, 2, 3, 4])
            .heal_at(6.0)
            .crash_at(2.0, 4)
            .restart_at(9.0, 4)
            .seed(seed);
        let run_at = |threads: usize| {
            blockfed::compute::set_threads(threads);
            let cell = ScenarioRunner::new().run(&spec);
            blockfed::compute::set_threads(0);
            cell
        };
        let single = run_at(1);
        let eight = run_at(8);
        prop_assert_eq!(&single, &eight, "thread count leaked into a lossy run");
        prop_assert!(!single.stalled(), "chaos cell must settle: {:?}", single);
    }
}
