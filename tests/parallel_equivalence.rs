//! Kernel-equivalence suite for the parallel compute backend.
//!
//! Every parallel kernel must produce results identical to its scalar
//! reference — bit-for-bit where the accumulation order is preserved (all
//! kernels here), at thread counts 1, 2, and 8, across random shapes
//! including edge shapes (1×N, N×1, non-tile-multiple dims). Thread counts
//! are switched through `blockfed::compute::set_threads`, serialized by a
//! process-wide lock because the override is global.

use blockfed::chain::pow;
use blockfed::crypto::sha256::sha256;
use blockfed::fl::robust::{coordinate_median, krum_scores, trimmed_mean};
use blockfed::fl::{fed_avg, fed_avg_unweighted, ClientId, ModelUpdate};
use blockfed::tensor::ops::{clip, log_softmax_rows, relu, softmax_rows};
use blockfed::tensor::{conv2d_forward, im2col, matmul, Conv2dSpec, Tensor};
use blockfed::tensor::{matmul_at, matmul_bt};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn with_threads<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
    let _g = thread_guard();
    let mut results = THREAD_COUNTS.iter().map(|&t| {
        blockfed::compute::set_threads(t);
        f()
    });
    let first = results.next().expect("non-empty thread list");
    for (t, r) in THREAD_COUNTS[1..].iter().zip(results) {
        assert_eq!(r, first, "thread count {t} diverged");
    }
    blockfed::compute::set_threads(0);
    first
}

fn random_tensor(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect(), shape)
}

#[test]
fn matmul_variants_bit_match_reference_on_edge_and_large_shapes() {
    let mut rng = StdRng::seed_from_u64(100);
    // (m, k, n): 1×N, N×1, tiny, non-tile-multiple, and above the parallel
    // threshold (K_BLOCK/J_BLOCK in blockfed-tensor are 512/64; PAR_THRESHOLD
    // is 16384 scalar ops).
    let shapes = [
        (1, 5, 9),
        (9, 1, 3),
        (3, 7, 1),
        (40, 300, 33),
        (65, 257, 129),
        (128, 512, 64),
    ];
    for (m, k, n) in shapes {
        let a = random_tensor(&mut rng, &[m, k]);
        let b = random_tensor(&mut rng, &[k, n]);
        let bt = random_tensor(&mut rng, &[n, k]);
        let at = random_tensor(&mut rng, &[k, m]);
        let want = blockfed::tensor::matmul::reference::matmul(&a, &b);
        let want_bt = blockfed::tensor::matmul::reference::matmul_bt(&a, &bt);
        let want_at = blockfed::tensor::matmul::reference::matmul_at(&at, &b);
        let (got, got_bt, got_at) =
            with_threads(|| (matmul(&a, &b), matmul_bt(&a, &bt), matmul_at(&at, &b)));
        assert_eq!(got, want, "matmul {m}x{k}x{n}");
        assert_eq!(got_bt, want_bt, "matmul_bt {m}x{k}x{n}");
        assert_eq!(got_at, want_at, "matmul_at {m}x{k}x{n}");
    }
}

#[test]
fn conv_kernels_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(101);
    let cases = [
        // (n, c, h, w, out_channels, kernel, stride, padding)
        (1, 1, 5, 5, 1, 3, 1, 1),
        (2, 3, 9, 9, 4, 3, 2, 0),
        (2, 8, 16, 16, 16, 3, 1, 1), // large enough to cross the threshold
    ];
    for (n, c, h, w, oc, k, stride, padding) in cases {
        let spec = Conv2dSpec {
            in_channels: c,
            out_channels: oc,
            kernel: k,
            stride,
            padding,
        };
        let input = random_tensor(&mut rng, &[n, c, h, w]);
        let weights = random_tensor(&mut rng, &[oc, c * k * k]);
        let bias = random_tensor(&mut rng, &[oc]);
        with_threads(|| im2col(&input, &spec));
        with_threads(|| conv2d_forward(&input, &weights, &bias, &spec));
    }
}

#[test]
fn elementwise_ops_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(102);
    // Tall enough to cross PAR_THRESHOLD.
    let logits = random_tensor(&mut rng, &[600, 40]);
    with_threads(|| softmax_rows(&logits));
    with_threads(|| log_softmax_rows(&logits));
    with_threads(|| relu(&logits));
    with_threads(|| clip(&logits, -0.5, 0.5));
}

fn random_updates(rng: &mut StdRng, n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let params: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            ModelUpdate::new(ClientId(i), 1, params, 1 + i * 3)
        })
        .collect()
}

#[test]
fn fedavg_bit_matches_scalar_reference_at_every_thread_count() {
    let mut rng = StdRng::seed_from_u64(103);
    for (n, dim) in [(2usize, 3usize), (5, 999), (4, 20_000)] {
        let updates = random_updates(&mut rng, n, dim);
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        // Scalar reference: the pre-parallel accumulation, verbatim.
        let total_weight: f64 = refs.iter().map(|u| u.sample_count as f64).sum();
        let mut expect = vec![0.0f64; dim];
        for u in &refs {
            let w = u.sample_count as f64 / total_weight;
            for (o, &p) in expect.iter_mut().zip(&u.params) {
                *o += w * f64::from(p);
            }
        }
        let expect: Vec<f32> = expect.into_iter().map(|v| v as f32).collect();
        let got = with_threads(|| fed_avg(&refs).expect("valid updates"));
        assert_eq!(got, expect, "fed_avg n={n} dim={dim}");
        with_threads(|| fed_avg_unweighted(&refs).expect("valid updates"));
    }
}

#[test]
fn robust_rules_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(104);
    let updates = random_updates(&mut rng, 7, 6_000);
    let refs: Vec<&ModelUpdate> = updates.iter().collect();
    with_threads(|| krum_scores(&refs, 1).expect("enough updates"));
    with_threads(|| trimmed_mean(&refs, 2).expect("enough updates"));
    with_threads(|| coordinate_median(&refs).expect("valid updates"));
}

#[test]
fn pow_mining_is_thread_count_invariant_and_matches_reference() {
    let header = blockfed::chain::Header {
        parent: sha256(b"equivalence-parent"),
        number: 9,
        timestamp_ns: 123_456_789,
        miner: blockfed::crypto::H160::from_bytes([7; 20]),
        difficulty: 64,
        nonce: 0,
        tx_root: sha256(b"txs"),
        state_root: sha256(b"state"),
        gas_used: 21_000,
        gas_limit: 1_000_000,
    };
    let want = pow::mine_reference(&mut header.clone(), 0, 1_000_000);
    assert!(want.is_some(), "difficulty 64 should seal");
    let got_serial = pow::mine(&mut header.clone(), 0, 1_000_000);
    assert_eq!(got_serial, want);
    let got = with_threads(|| pow::mine_parallel(&mut header.clone(), 0, 1_000_000));
    assert_eq!(got, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_equivalence_on_random_shapes(
        m in 1usize..24,
        k in 1usize..300,
        n in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_tensor(&mut rng, &[m, k]);
        let b = random_tensor(&mut rng, &[k, n]);
        let want = blockfed::tensor::matmul::reference::matmul(&a, &b);
        let got = with_threads(|| matmul(&a, &b));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fedavg_equivalence_on_random_cohorts(
        n in 2usize..6,
        dim in 1usize..400,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let want = with_threads(|| fed_avg(&refs).expect("valid updates"));
        prop_assert_eq!(want.len(), dim);
    }
}
