//! Integration tests of the blockchain substrate with the VM and the FL
//! registry: mempool-to-block pipelines, reorg behaviour, and the
//! non-repudiation audit across chain views.

use blockfed::chain::{pow, Blockchain, GenesisSpec, Mempool, SealPolicy, Transaction};
use blockfed::core::{
    collect_evidence, confirmed_submissions, register_tx, submit_model_tx, verify_evidence,
};
use blockfed::crypto::{KeyPair, H160};
use blockfed::fl::{ClientId, ModelUpdate};
use blockfed::vm::{
    parse_u64, BlockfedRuntime, NativeContract, RegistryCall, NATIVE_REGISTRY_CODE,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct World {
    chain: Blockchain,
    runtime: BlockfedRuntime,
    keys: Vec<KeyPair>,
    registry: H160,
}

fn world(peers: usize, difficulty: u128) -> World {
    let keys: Vec<KeyPair> = (0..peers)
        .map(|s| KeyPair::generate(&mut StdRng::seed_from_u64(s as u64 + 1)))
        .collect();
    let addrs: Vec<H160> = keys.iter().map(KeyPair::address).collect();
    let registry = H160::from_bytes([0xEE; 20]);
    let spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
        .with_difficulty(difficulty)
        .with_code(registry, NATIVE_REGISTRY_CODE.to_vec());
    let mut runtime = BlockfedRuntime::new();
    runtime.register_native(registry, NativeContract::FlRegistry);
    World {
        chain: Blockchain::with_seal_policy(&spec, SealPolicy::Simulated),
        runtime,
        keys,
        registry,
    }
}

#[test]
fn mempool_to_block_pipeline_with_real_pow() {
    // Full seal checking at low difficulty: mine a real nonce.
    let keys: Vec<KeyPair> = (0..2)
        .map(|s| KeyPair::generate(&mut StdRng::seed_from_u64(s + 50)))
        .collect();
    let addrs: Vec<H160> = keys.iter().map(KeyPair::address).collect();
    let registry = H160::from_bytes([0xEE; 20]);
    let spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
        .with_difficulty(64)
        .with_code(registry, NATIVE_REGISTRY_CODE.to_vec());
    let mut chain = Blockchain::new(&spec); // SealPolicy::Full
    let mut runtime = BlockfedRuntime::new();
    runtime.register_native(registry, NativeContract::FlRegistry);

    let mut pool = Mempool::new();
    let state = chain.state().clone();
    for k in &keys {
        pool.insert(register_tx(registry, k, 0), &state).unwrap();
    }
    let txs = pool.select(&state, u64::MAX, 10);
    assert_eq!(txs.len(), 2);
    let mut block = chain.build_candidate(addrs[0], txs, 1_000, &mut runtime);
    pow::mine(&mut block.header, 0, u64::MAX).expect("difficulty 64 mines fast");
    chain.import(block, &mut runtime).unwrap();
    let state = chain.state().clone();
    pool.prune(&state);
    assert!(pool.is_empty(), "included txs must leave the pool");

    // Registry state reflects both registrations.
    let ctx = blockfed::chain::CallContext {
        caller: addrs[0],
        contract: registry,
        calldata: RegistryCall::ParticipantCount.encode(),
        gas_budget: 1_000_000,
        block_number: 2,
        timestamp_ns: 2_000,
    };
    let mut state = chain.state().clone();
    let out = blockfed::vm::registry::execute_registry(&ctx, &mut state);
    assert_eq!(parse_u64(&out.output), Some(2));
}

#[test]
fn reorg_preserves_registry_consistency() {
    let mut w = world(2, 16);
    let addrs: Vec<H160> = w.keys.iter().map(KeyPair::address).collect();
    let genesis = w.chain.head();

    // Fork A: both register (one block).
    let txs_a = vec![
        register_tx(w.registry, &w.keys[0], 0),
        register_tx(w.registry, &w.keys[1], 0),
    ];
    let block_a = w
        .chain
        .build_candidate(addrs[0], txs_a, 1_000, &mut w.runtime);
    w.chain.import(block_a, &mut w.runtime).unwrap();
    let head_a = w.chain.head();

    // Fork B from genesis: only peer 1 registers, but two blocks → heavier.
    let state_g = w.chain.state_at(&genesis).unwrap().clone();
    let env = blockfed::chain::BlockEnv {
        number: 1,
        timestamp_ns: 2_000,
        miner: addrs[1],
        gas_limit: w.chain.head_block().header.gas_limit,
    };
    let txs_b = vec![register_tx(w.registry, &w.keys[1], 0)];
    let exec = blockfed::chain::execute_block_txs(&state_g, &txs_b, &env, &mut w.runtime);
    let header = blockfed::chain::Header {
        parent: genesis,
        number: 1,
        timestamp_ns: 2_000,
        miner: addrs[1],
        difficulty: 16,
        nonce: 0,
        tx_root: blockfed::chain::Block::compute_tx_root(&txs_b),
        state_root: exec.state.root(),
        gas_used: exec.gas_used,
        gas_limit: env.gas_limit,
    };
    let block_b1 = blockfed::chain::Block {
        header,
        transactions: txs_b,
    };
    let b1_hash = block_b1.hash();
    w.chain.import(block_b1, &mut w.runtime).unwrap();
    assert_eq!(w.chain.head(), head_a, "equal TD keeps fork A");

    // Extend fork B to trigger the reorg.
    let state_b1 = w.chain.state_at(&b1_hash).unwrap().clone();
    let header2 = blockfed::chain::Header {
        parent: b1_hash,
        number: 2,
        timestamp_ns: 3_000,
        miner: addrs[1],
        difficulty: 16,
        nonce: 0,
        tx_root: blockfed::chain::Block::compute_tx_root(&[]),
        state_root: state_b1.root(),
        gas_used: 0,
        gas_limit: env.gas_limit,
    };
    let block_b2 = blockfed::chain::Block {
        header: header2,
        transactions: vec![],
    };
    let outcome = w.chain.import(block_b2, &mut w.runtime).unwrap();
    assert!(matches!(
        outcome,
        blockfed::chain::ImportOutcome::Reorged { .. }
    ));

    // On the new canonical chain only peer 1 is registered.
    let ctx = blockfed::chain::CallContext {
        caller: addrs[0],
        contract: w.registry,
        calldata: RegistryCall::ParticipantCount.encode(),
        gas_budget: 1_000_000,
        block_number: 3,
        timestamp_ns: 4_000,
    };
    let mut state = w.chain.state().clone();
    let out = blockfed::vm::registry::execute_registry(&ctx, &mut state);
    assert_eq!(
        parse_u64(&out.output),
        Some(1),
        "fork A's registration must be gone"
    );
}

#[test]
fn evidence_survives_only_on_the_chain_that_contains_it() {
    let mut w = world(2, 16);
    let addrs: Vec<H160> = w.keys.iter().map(KeyPair::address).collect();
    let update = ModelUpdate::new(ClientId(0), 1, vec![0.5, 0.25], 10);

    let txs = vec![
        register_tx(w.registry, &w.keys[0], 0),
        submit_model_tx(&update, w.registry, &w.keys[0], 1),
    ];
    let block = w
        .chain
        .build_candidate(addrs[0], txs, 1_000, &mut w.runtime);
    w.chain.import(block, &mut w.runtime).unwrap();

    let evidence = collect_evidence(&w.chain, w.registry, addrs[0], &update).unwrap();
    verify_evidence(&w.chain, &evidence, &update).unwrap();

    // A fresh chain (different view) knows nothing about the block.
    let fresh = world(2, 16);
    assert!(verify_evidence(&fresh.chain, &evidence, &update).is_err());
}

#[test]
fn double_round_submission_rejected_on_chain() {
    let mut w = world(1, 16);
    let addr = w.keys[0].address();
    let u1 = ModelUpdate::new(ClientId(0), 1, vec![1.0], 10);
    let u2 = ModelUpdate::new(ClientId(0), 1, vec![2.0], 10);
    let txs = vec![
        register_tx(w.registry, &w.keys[0], 0),
        submit_model_tx(&u1, w.registry, &w.keys[0], 1),
        submit_model_tx(&u2, w.registry, &w.keys[0], 2), // same round: must revert
    ];
    let block = w.chain.build_candidate(addr, txs, 1_000, &mut w.runtime);
    w.chain.import(block, &mut w.runtime).unwrap();
    let confirmed = confirmed_submissions(&w.chain, w.registry, 1);
    assert_eq!(
        confirmed.len(),
        1,
        "duplicate round submission must not confirm"
    );
    assert_eq!(
        confirmed[0].model_hash,
        blockfed::core::model_fingerprint(&u1)
    );
}

#[test]
fn forged_transactions_never_enter_blocks_effectively() {
    let mut w = world(2, 16);
    let addr0 = w.keys[0].address();
    // Peer 1 crafts a tx claiming to be peer 0 but signs with its own key.
    let mut forged = Transaction::call(addr0, w.registry, RegistryCall::Register.encode(), 0);
    forged = forged.signed(&w.keys[1]); // signed() overwrites from → not forged
    forged.from = addr0; // force the forgery
    let mut pool = Mempool::new();
    let state = w.chain.state().clone();
    assert!(
        pool.insert(forged.clone(), &state).is_err(),
        "mempool rejects forgery"
    );

    // Even if a malicious miner includes it, execution marks it invalid.
    let block = w
        .chain
        .build_candidate(addr0, vec![forged], 1_000, &mut w.runtime);
    w.chain.import(block, &mut w.runtime).unwrap();
    let receipts = w.chain.receipts(&w.chain.head()).unwrap();
    assert_eq!(receipts[0].status, blockfed::chain::ExecStatus::Invalid);
    assert!(confirmed_submissions(&w.chain, w.registry, 0).is_empty());
}
