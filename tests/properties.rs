//! Property-based tests of the core invariants, spanning crates.

use blockfed::chain::{DifficultyController, RetargetRule};
use blockfed::crypto::{merkle_root, sha256::Sha256, MerkleTree, U256};
use blockfed::fl::robust::{
    clip_to_norm, coordinate_median, krum, l2_norm, multi_krum, trimmed_mean,
};
use blockfed::fl::{
    fed_avg, fed_avg_unweighted, AsyncMerger, Attack, ClientId, ModelUpdate, StalenessDecay,
    WaitPolicy,
};
use blockfed::nn::serialize::{decode_params, encode_params};
use blockfed::tensor::{matmul, Tensor};
use proptest::prelude::*;

fn u256_strategy() -> impl Strategy<Value = U256> {
    prop::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- U256 ring axioms -------------------------------------

    #[test]
    fn u256_addition_commutes(a in u256_strategy(), b in u256_strategy()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn u256_add_sub_roundtrip(a in u256_strategy(), b in u256_strategy()) {
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn u256_multiplication_commutes(a in u256_strategy(), b in u256_strategy()) {
        prop_assert_eq!(a.wrapping_mul(b), b.wrapping_mul(a));
    }

    #[test]
    fn u256_div_rem_reconstructs(a in u256_strategy(), b in u256_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn u256_be_bytes_roundtrip(a in u256_strategy()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn u256_shift_inverse(a in u256_strategy(), s in 0u32..255) {
        // (a >> s) << s clears the low bits but must match masking.
        let masked = (a >> s) << s;
        let reconstructed = a & (U256::MAX >> s << s);
        prop_assert_eq!(masked, reconstructed);
    }

    #[test]
    fn u256_mul_mod_matches_wide_rem(a in u256_strategy(), b in u256_strategy(), m in u256_strategy()) {
        prop_assume!(!m.is_zero());
        let via_mod = a.mul_mod(b, m);
        let via_wide = a.mul_wide(b).rem(m);
        prop_assert_eq!(via_mod, via_wide);
        prop_assert!(via_mod < m);
    }

    // ---------------- hashing ----------------------------------------------

    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), blockfed::crypto::sha256::sha256(&data));
    }

    #[test]
    fn merkle_proofs_verify_for_random_trees(n in 1usize..40, probe in 0usize..40) {
        let leaves: Vec<_> = (0..n)
            .map(|i| blockfed::crypto::sha256::sha256(&(i as u64).to_le_bytes()))
            .collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let idx = probe % n;
        let proof = tree.proof(idx).expect("in range");
        prop_assert!(proof.verify(&leaves[idx], &tree.root()));
        // Wrong leaf fails (when distinguishable).
        if n > 1 {
            let other = (idx + 1) % n;
            prop_assert!(!proof.verify(&leaves[other], &tree.root()));
        }
        prop_assert_eq!(merkle_root(&leaves), tree.root());
    }

    // ---------------- FedAvg invariants -------------------------------------

    #[test]
    fn fedavg_stays_in_convex_hull(
        params_a in prop::collection::vec(-10.0f32..10.0, 1..32),
        deltas in prop::collection::vec(-5.0f32..5.0, 1..32),
        w_a in 1usize..100,
        w_b in 1usize..100,
    ) {
        let n = params_a.len().min(deltas.len());
        let a_params: Vec<f32> = params_a[..n].to_vec();
        let b_params: Vec<f32> = a_params.iter().zip(&deltas[..n]).map(|(a, d)| a + d).collect();
        let a = ModelUpdate::new(ClientId(0), 0, a_params.clone(), w_a);
        let b = ModelUpdate::new(ClientId(1), 0, b_params.clone(), w_b);
        let avg = fed_avg(&[&a, &b]).unwrap();
        for i in 0..n {
            let lo = a_params[i].min(b_params[i]) - 1e-4;
            let hi = a_params[i].max(b_params[i]) + 1e-4;
            prop_assert!(avg[i] >= lo && avg[i] <= hi, "component {} out of hull", i);
        }
    }

    #[test]
    fn fedavg_of_identical_updates_is_identity(
        params in prop::collection::vec(-10.0f32..10.0, 1..64),
        weights in prop::collection::vec(1usize..1000, 2..5),
    ) {
        let updates: Vec<ModelUpdate> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| ModelUpdate::new(ClientId(i), 0, params.clone(), w))
            .collect();
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let avg = fed_avg(&refs).unwrap();
        for (x, y) in avg.iter().zip(&params) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    // ---------------- serialization -----------------------------------------

    #[test]
    fn param_codec_roundtrips(params in prop::collection::vec(-1e6f32..1e6, 0..256)) {
        let decoded = decode_params(&encode_params(&params)).unwrap();
        prop_assert_eq!(params.len(), decoded.len());
        for (a, b) in params.iter().zip(&decoded) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn param_codec_rejects_truncation(params in prop::collection::vec(-1.0f32..1.0, 1..64), cut in 1usize..64) {
        let mut bytes = encode_params(&params);
        let cut = cut.min(bytes.len() - 1);
        bytes.truncate(bytes.len() - cut);
        prop_assert!(decode_params(&bytes).is_err());
    }

    // ---------------- tensor algebra ----------------------------------------

    #[test]
    fn matmul_identity_is_neutral(rows in 1usize..8, cols in 1usize..8, vals in prop::collection::vec(-5.0f32..5.0, 64)) {
        let data: Vec<f32> = vals.iter().cycle().take(rows * cols).copied().collect();
        let a = Tensor::from_vec(data, &[rows, cols]);
        let mut eye = Tensor::zeros(&[cols, cols]);
        for i in 0..cols {
            eye.set(&[i, i], 1.0);
        }
        let out = matmul(&a, &eye);
        prop_assert!(out.max_abs_diff(&a) < 1e-5);
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..10, cols in 1usize..10, vals in prop::collection::vec(-5.0f32..5.0, 128)) {
        let data: Vec<f32> = vals.iter().cycle().take(rows * cols).copied().collect();
        let a = Tensor::from_vec(data, &[rows, cols]);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..6, cols in 1usize..8, vals in prop::collection::vec(-30.0f32..30.0, 64)) {
        let data: Vec<f32> = vals.iter().cycle().take(rows * cols).copied().collect();
        let logits = Tensor::from_vec(data, &[rows, cols]);
        let p = blockfed::tensor::ops::softmax_rows(&logits);
        for r in 0..rows {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    // ---------------- robust aggregation -------------------------------------

    #[test]
    fn median_is_coordinatewise_bounded(
        cols in prop::collection::vec(prop::collection::vec(-100.0f32..100.0, 3..8), 1..16),
    ) {
        // Build n updates from the transposed column lists.
        let n = cols[0].len();
        prop_assume!(cols.iter().all(|c| c.len() == n));
        let updates: Vec<ModelUpdate> = (0..n)
            .map(|i| {
                let params: Vec<f32> = cols.iter().map(|c| c[i]).collect();
                ModelUpdate::new(ClientId(i), 0, params, 1)
            })
            .collect();
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let med = coordinate_median(&refs).unwrap();
        for (c, column) in cols.iter().enumerate() {
            let lo = column.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = column.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(med[c] >= lo && med[c] <= hi, "median out of range at {}", c);
        }
    }

    #[test]
    fn trimmed_mean_zero_trim_matches_unweighted_fedavg(
        vals in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4), 2..8),
    ) {
        let updates: Vec<ModelUpdate> = vals
            .iter()
            .enumerate()
            .map(|(i, p)| ModelUpdate::new(ClientId(i), 0, p.clone(), 7))
            .collect();
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let tm = trimmed_mean(&refs, 0).unwrap();
        let fa = fed_avg_unweighted(&refs).unwrap();
        for (a, b) in tm.iter().zip(&fa) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn krum_never_selects_a_distant_outlier(
        centre in prop::collection::vec(-1.0f32..1.0, 4),
        jitters in prop::collection::vec(prop::collection::vec(-0.01f32..0.01, 4), 4..8),
        boost in 100.0f32..1000.0,
    ) {
        // Honest cluster + one boosted outlier appended last.
        let mut updates: Vec<ModelUpdate> = jitters
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let params: Vec<f32> = centre.iter().zip(j).map(|(c, d)| c + d).collect();
                ModelUpdate::new(ClientId(i), 0, params, 1)
            })
            .collect();
        let outlier: Vec<f32> = centre.iter().map(|c| c + boost).collect();
        updates.push(ModelUpdate::new(ClientId(99), 0, outlier, 1));
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let (idx, _) = krum(&refs, 1).unwrap();
        prop_assert_ne!(idx, refs.len() - 1, "krum picked the outlier");
        // Multi-Krum over the honest majority also excludes it.
        let (selected, _) = multi_krum(&refs, 1, refs.len() - 2).unwrap();
        prop_assert!(!selected.contains(&(refs.len() - 1)));
    }

    #[test]
    fn clipping_never_increases_norm_and_preserves_direction(
        params in prop::collection::vec(-100.0f32..100.0, 1..32),
        max_norm in 0.1f64..50.0,
    ) {
        let clipped = clip_to_norm(&params, max_norm).unwrap();
        prop_assert!(l2_norm(&clipped) <= max_norm + 1e-6 || l2_norm(&clipped) <= l2_norm(&params) + 1e-6);
        // Direction preserved: the sign pattern never flips.
        for (a, b) in params.iter().zip(&clipped) {
            prop_assert!(a.signum() == b.signum() || *b == 0.0 || *a == 0.0);
        }
    }

    // ---------------- staleness & wait policies ------------------------------

    #[test]
    fn staleness_decays_are_bounded_and_monotone(
        a in 0.0f64..4.0,
        lambda in 0.0f64..4.0,
        cutoff in 0u32..16,
        s in 0u32..64,
    ) {
        for decay in [
            StalenessDecay::Constant,
            StalenessDecay::Polynomial { a },
            StalenessDecay::Exponential { lambda },
            StalenessDecay::Cutoff { max_staleness: cutoff },
        ] {
            let f0 = decay.factor(s);
            let f1 = decay.factor(s + 1);
            prop_assert!((0.0..=1.0).contains(&f0));
            prop_assert!(f1 <= f0 + 1e-12, "{decay} increased with staleness");
        }
    }

    #[test]
    fn async_merge_is_a_convex_step(
        global in prop::collection::vec(-10.0f32..10.0, 1..16),
        delta in prop::collection::vec(-5.0f32..5.0, 1..16),
        alpha in 0.0f64..1.0,
        staleness in 0u32..8,
    ) {
        let n = global.len().min(delta.len());
        let update: Vec<f32> = global[..n].iter().zip(&delta[..n]).map(|(g, d)| g + d).collect();
        let mut merger = AsyncMerger::new(
            global[..n].to_vec(),
            alpha,
            StalenessDecay::Polynomial { a: 0.5 },
        );
        merger.merge(&update, staleness).unwrap();
        for i in 0..n {
            let lo = global[i].min(update[i]) - 1e-4;
            let hi = global[i].max(update[i]) + 1e-4;
            prop_assert!(merger.global()[i] >= lo && merger.global()[i] <= hi);
        }
    }

    #[test]
    fn wait_policy_ready_is_monotone_in_received(k in 0usize..10, total in 1usize..10, r in 0usize..10) {
        for policy in [WaitPolicy::All, WaitPolicy::FirstK(k)] {
            let r2 = (r + 1).min(total);
            let r1 = r.min(total);
            if policy.ready(r1, total) {
                prop_assert!(policy.ready(r2, total), "{policy} lost readiness");
            }
            prop_assert!(policy.expected(total) <= total);
        }
    }

    // ---------------- attacks -------------------------------------------------

    #[test]
    fn sign_flip_is_involutive_at_unit_scale(params in prop::collection::vec(-10.0f32..10.0, 1..32)) {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut u = ModelUpdate::new(ClientId(0), 0, params.clone(), 1);
        let flip = Attack::SignFlip { scale: 1.0 };
        flip.apply(&mut u, &mut rng);
        flip.apply(&mut u, &mut rng);
        prop_assert_eq!(u.params, params);
    }

    #[test]
    fn constant_attack_is_idempotent(params in prop::collection::vec(-10.0f32..10.0, 1..32), v in -5.0f32..5.0) {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut u = ModelUpdate::new(ClientId(0), 0, params, 1);
        let a = Attack::Constant { value: v };
        a.apply(&mut u, &mut rng);
        let once = u.params.clone();
        a.apply(&mut u, &mut rng);
        prop_assert_eq!(u.params, once);
    }

    // ---------------- difficulty control --------------------------------------

    #[test]
    fn controllers_stay_in_bounds_under_arbitrary_intervals(
        intervals in prop::collection::vec(1u64..100_000_000_000, 1..64),
        initial in 16u128..1_000_000_000,
    ) {
        for rule in [
            RetargetRule::Homestead,
            RetargetRule::MovingAverage { window: 4 },
            RetargetRule::Pi { kp: 0.4, ki: 0.1 },
        ] {
            let mut c = DifficultyController::new(rule, initial);
            let mut prev = c.difficulty();
            for &i in &intervals {
                let next = c.observe(i);
                prop_assert!(next >= blockfed::chain::pow::MIN_DIFFICULTY);
                // Adaptive rules move at most 2x per observation; Homestead
                // moves by parent/2048 (plus the minimum clamp).
                prop_assert!(next <= prev.saturating_mul(2).max(blockfed::chain::pow::MIN_DIFFICULTY));
                prop_assert!(next >= prev / 2);
                prev = next;
            }
        }
    }

    // ---------------- VM robustness -----------------------------------------

    #[test]
    fn random_bytecode_never_panics_and_respects_gas(code in prop::collection::vec(any::<u8>(), 0..256), budget in 0u64..50_000) {
        let ctx = blockfed::chain::CallContext {
            caller: blockfed::crypto::H160::zero(),
            contract: blockfed::crypto::H160::from_bytes([9; 20]),
            calldata: vec![1, 2, 3, 4],
            gas_budget: budget,
            block_number: 1,
            timestamp_ns: 0,
        };
        let mut state = blockfed::chain::State::new();
        let out = blockfed::vm::interp::run(&ctx, &code, &mut state);
        prop_assert!(out.gas_used <= budget, "gas overrun: {} > {}", out.gas_used, budget);
    }
}
