//! Telemetry invariance suite: a trace sink only *observes*. Attaching a
//! real sink (MemorySink, bound for JSONL/Perfetto export) to any run must
//! leave the simulation bit-identical to the same run under the no-op sink —
//! telemetry draws no simulation RNG, never alters scheduling, and span ids
//! are allocated identically whether tracing is on or off. The trace bytes
//! themselves are also deterministic: same seed, same JSONL, at any compute
//! thread count.

use blockfed::scenario::{ScenarioRunner, ScenarioSpec};
use blockfed::telemetry::{MemorySink, RecordKind};
use proptest::prelude::*;

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The acceptance cell: the 48-peer best-k announce/fetch cell with 5% loss,
/// exercising floods, fetch episodes, retries, and the full round lifecycle.
fn lossy48() -> ScenarioSpec {
    ScenarioSpec::new("bestk48-tele", 48)
        .rounds(2)
        .consider_cutover(6, 40)
        .data(blockfed::scenario::DataSpec::scaled_for(48))
        .loss(0.05)
        .seed(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any sampled mix of loss, partition + heal, and crash + restart folds
    /// the identical cell report whether its spans land in a MemorySink or
    /// the no-op sink; the captured trace balances every span and its JSONL
    /// export passes the schema validator.
    #[test]
    fn traced_cells_are_bit_identical_to_untraced(
        loss in 0.0f64..0.20,
        partition_on in any::<bool>(),
        crash_on in any::<bool>(),
        seed in 0u64..200,
    ) {
        let mut spec = ScenarioSpec::new("tele", 4).rounds(2).loss(loss).seed(seed);
        if partition_on {
            spec = spec.partition_at(1.0, &[0], &[1, 2, 3]).heal_at(6.0);
        }
        if crash_on {
            spec = spec.crash_at(2.0, 3).restart_at(9.0, 3);
        }
        let runner = ScenarioRunner::new();
        let plain = runner.run(&spec);
        let mut sink = MemorySink::new();
        let traced = runner.run_traced(&spec, &mut sink);
        prop_assert_eq!(&plain, &traced, "the sink perturbed the simulation");

        let begins = sink.records().iter().filter(|r| r.kind == RecordKind::Begin).count();
        let ends = sink.records().iter().filter(|r| r.kind == RecordKind::End).count();
        prop_assert_eq!(begins, ends, "unbalanced spans");
        let lines = blockfed::telemetry::jsonl::validate_jsonl(&sink.to_jsonl())
            .map_err(|e| TestCaseError::Fail(format!("invalid JSONL: {e}")))?;
        prop_assert_eq!(lines, sink.records().len());
    }
}

/// The PR's acceptance bar: the lossy 48-peer cell is bit-identical with a
/// JSONL-bound sink vs the no-op sink, at 1 and 8 compute threads — and the
/// exported trace bytes are identical at both thread counts (loss sampling
/// and span emission live in the single-threaded event loop, never in the
/// parallel training region).
#[test]
fn lossy_48_peer_cell_is_sink_and_thread_invariant() {
    let _g = thread_guard();
    let spec = lossy48();
    let runner = ScenarioRunner::new();
    let run_at = |threads: usize| {
        blockfed::compute::set_threads(threads);
        let plain = runner.run(&spec);
        let mut sink = MemorySink::new();
        let traced = runner.run_traced(&spec, &mut sink);
        blockfed::compute::set_threads(0);
        (plain, traced, sink.to_jsonl())
    };
    let (plain1, traced1, jsonl1) = run_at(1);
    let (plain8, traced8, jsonl8) = run_at(8);
    assert_eq!(plain1, traced1, "sink changed the 1-thread run");
    assert_eq!(plain8, traced8, "sink changed the 8-thread run");
    assert_eq!(plain1, plain8, "thread count leaked into the simulation");
    assert_eq!(jsonl1, jsonl8, "trace bytes depend on thread count");
    // The trace actually covers the lossy cell's machinery.
    assert!(traced1.dropped_msgs() > 0, "5% loss never dropped");
    for name in [
        "\"name\":\"round\"",
        "\"name\":\"fetch\"",
        "\"name\":\"net.flood\"",
    ] {
        assert!(jsonl1.contains(name), "trace missing {name}");
    }
}
