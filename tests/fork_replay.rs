//! Fork–replay bit-identity: forking a chain at block `k` and re-importing
//! the suffix must reproduce the straight-line run exactly — same head, same
//! canonical hashes, same per-block state roots and receipts — with the
//! suffix served from the shared [`ChainStore`] execution memo instead of
//! being re-executed. Verified both on a bare transfer chain (property test
//! over fork points and snapshot intervals) and on the canonical chain a
//! full decentralized run produced under a chaos fault timeline.

use blockfed::chain::{Blockchain, ChainStore, GenesisSpec, NullRuntime, SealPolicy, Transaction};
use blockfed::core::{
    registry_address, ComputeProfile, Decentralized, DecentralizedConfig, Fault, TimedFault,
};
use blockfed::crypto::KeyPair;
use blockfed::data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::nn::SimpleNnConfig;
use blockfed::vm::{BlockfedRuntime, NativeContract};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A straight-line chain of `blocks` self-transfers over one funded account.
fn transfer_chain(store: ChainStore, snapshot_interval: u64, blocks: u64) -> Blockchain {
    let mut rng = StdRng::seed_from_u64(7);
    let key = KeyPair::generate(&mut rng);
    let spec = GenesisSpec::with_accounts(&[key.address()], 1_000_000).with_difficulty(1);
    let mut chain = Blockchain::with_store(&spec, SealPolicy::Simulated, store)
        .with_snapshot_interval(snapshot_interval);
    for nonce in 0..blocks {
        let tx = Transaction::transfer(key.address(), key.address(), 1, nonce).signed(&key);
        let block = chain.build_candidate(
            key.address(),
            vec![tx],
            (nonce + 1) * 1_000,
            &mut NullRuntime,
        );
        chain.import(block, &mut NullRuntime).unwrap();
    }
    chain
}

/// Asserts `fork` reproduced `chain` exactly over `suffix` after re-import.
fn assert_replay_identical(
    chain: &Blockchain,
    fork: &Blockchain,
    suffix: &[blockfed::crypto::H256],
) {
    assert_eq!(fork.head(), chain.head(), "replayed head diverged");
    assert_eq!(
        fork.canonical_chain(),
        chain.canonical_chain(),
        "replayed canonical chain diverged"
    );
    for h in suffix {
        assert_eq!(
            fork.state_at(h).expect("replayed state").root(),
            chain.state_at(h).expect("original state").root(),
            "state root diverged at {h}"
        );
        assert_eq!(
            fork.receipts(h),
            chain.receipts(h),
            "receipts diverged at {h}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forking at block `k` and replaying the suffix yields a chain
    /// bit-identical to the straight-line run, at any snapshot interval and
    /// fork point — and the replay never re-executes a block (the shared
    /// store serves every import from the memo).
    #[test]
    fn fork_and_replay_is_bit_identical(
        blocks in 3u64..10,
        k in 0u64..9,
        snapshot_interval in 1u64..5,
    ) {
        let k = k.min(blocks - 1);
        let store = ChainStore::new();
        let chain = transfer_chain(store.clone(), snapshot_interval, blocks);
        let canon = chain.canonical_chain();
        let fork_point = canon[k as usize];
        let mut fork = chain.fork_at(&fork_point).expect("fork point is on-chain");
        prop_assert_eq!(fork.head(), fork_point);

        let before = store.counters();
        let suffix = &canon[k as usize + 1..];
        for h in suffix {
            fork.import_arc(chain.block_arc(h).expect("suffix block"), &mut NullRuntime)
                .expect("replayed import");
        }
        let delta = store.counters().since(&before);
        prop_assert_eq!(delta.exec_misses, 0, "replay re-executed a block");
        prop_assert_eq!(delta.exec_hits, suffix.len() as u64);
        assert_replay_identical(&chain, &fork, suffix);
    }
}

fn world(n: usize, seed: u64) -> (Vec<Dataset>, Vec<Dataset>) {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let shards = partition_dataset(&train, n, Partition::Iid, &mut rng);
    (shards, vec![test; n])
}

/// Forking the canonical chain a full decentralized run produced — under a
/// chaos fault timeline (partition + heal, crash + restart) — and replaying
/// its suffix through a fresh FL-registry runtime is bit-identical and
/// memo-served.
#[test]
fn chaos_run_suffix_replays_through_the_memo() {
    let n = 4;
    let seed = 17;
    let store = ChainStore::new();
    let cfg = DecentralizedConfig {
        rounds: 2,
        local_epochs: 1,
        batch_size: 16,
        lr: 0.1,
        payload_bytes: 10_000,
        difficulty: 200_000,
        compute: ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.3,
            batch_parallel: false,
        },
        faults: vec![
            TimedFault::at_secs(
                0.5,
                Fault::Partition {
                    left: vec![0],
                    right: (1..n).collect(),
                },
            ),
            TimedFault::at_secs(4.0, Fault::HealAll),
            TimedFault::at_secs(1.0, Fault::PeerCrash { peer: n - 1 }),
            TimedFault::at_secs(9.0, Fault::PeerRestart { peer: n - 1 }),
        ],
        store: Some(store.clone()),
        seed,
        ..Default::default()
    };
    let (shards, tests) = world(n, seed);
    let driver = Decentralized::new(cfg, &shards, &tests);
    let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
    let mut arch_rng = StdRng::seed_from_u64(seed);
    let run = driver.run(&mut || nn.build(&mut arch_rng));

    let chain = run.final_chain;
    let canon = chain.canonical_chain();
    assert!(
        canon.len() >= 3,
        "the chaos run sealed too few blocks to fork meaningfully: {}",
        canon.len()
    );
    let mid = canon.len() / 2;
    let mut fork = chain.fork_at(&canon[mid]).expect("midpoint is canonical");

    // The replayed imports run a *fresh* runtime with the FL registry
    // registered where the orchestrator put it — the same execution
    // fingerprint, so every suffix block is a memo hit.
    let mut runtime = BlockfedRuntime::new();
    runtime.register_native(registry_address(), NativeContract::FlRegistry);
    let before = store.counters();
    let suffix = &canon[mid + 1..];
    for h in suffix {
        fork.import_arc(chain.block_arc(h).expect("suffix block"), &mut runtime)
            .expect("replayed import");
    }
    let delta = store.counters().since(&before);
    assert_eq!(delta.exec_misses, 0, "replay re-executed a chaos-run block");
    assert_eq!(delta.exec_hits, suffix.len() as u64);
    assert_replay_identical(&chain, &fork, suffix);
}
