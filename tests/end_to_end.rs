//! Integration tests spanning the whole stack through the `blockfed` facade:
//! data generation → federated training → blockchain coupling → reporting.

use blockfed::core::{ComputeProfile, Decentralized, DecentralizedConfig};
use blockfed::data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed::fl::{ClientId, Strategy, VanillaFl, VanillaFlConfig, WaitPolicy};
use blockfed::net::LinkSpec;
use blockfed::nn::{EffNetLite, EffNetLiteConfig, SimpleNnConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_world(seed: u64) -> (Vec<Dataset>, Dataset) {
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let (train, test) = gen.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew { alpha: 0.8 },
        &mut rng,
    );
    (shards, test)
}

#[test]
fn vanilla_and_decentralized_agree_on_learnability() {
    let (shards, test) = tiny_world(1);
    let tests = vec![test.clone(), test.clone(), test.clone()];
    let nn = SimpleNnConfig::tiny(test.feature_dim(), test.num_classes());

    // Vanilla.
    let v_config = VanillaFlConfig {
        rounds: 4,
        local_epochs: 3,
        batch_size: 16,
        lr: 0.1,
        strategy: Strategy::NotConsider,
        ..Default::default()
    };
    let driver = VanillaFl::new(v_config, &shards, &tests, &test);
    let mut arch = StdRng::seed_from_u64(2);
    let mut rng = StdRng::seed_from_u64(3);
    let vanilla = driver.run(&mut || nn.build(&mut arch), &mut rng);

    // Decentralized.
    let d_config = DecentralizedConfig {
        rounds: 4,
        local_epochs: 3,
        batch_size: 16,
        lr: 0.1,
        difficulty: 200_000,
        compute: ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.2,
            batch_parallel: false,
        },
        link: LinkSpec::lan(),
        payload_bytes: 10_000,
        seed: 4,
        ..Default::default()
    };
    let driver = Decentralized::new(d_config, &shards, &tests);
    let mut arch = StdRng::seed_from_u64(2);
    let decentralized = driver.run(&mut || nn.build(&mut arch));

    let chance = 1.0 / test.num_classes() as f64;
    let v_final = vanilla.final_accuracy(ClientId(0));
    let d_final = decentralized.final_accuracy(0);
    assert!(v_final > chance * 1.5, "vanilla failed to learn: {v_final}");
    assert!(
        d_final > chance * 1.5,
        "decentralized failed to learn: {d_final}"
    );
    // The paper's headline similarity: both settings land in the same regime.
    assert!(
        (v_final - d_final).abs() < 0.35,
        "settings diverged: vanilla {v_final} vs decentralized {d_final}"
    );
}

#[test]
fn consider_never_loses_to_not_consider_on_selection_set() {
    let (shards, test) = tiny_world(5);
    let tests = vec![test.clone(), test.clone(), test.clone()];
    let nn = SimpleNnConfig::tiny(test.feature_dim(), test.num_classes());
    let mut scores = Vec::new();
    for strategy in [Strategy::Consider, Strategy::NotConsider] {
        let config = VanillaFlConfig {
            rounds: 3,
            local_epochs: 2,
            strategy,
            ..Default::default()
        };
        let driver = VanillaFl::new(config, &shards, &tests, &test);
        let mut arch = StdRng::seed_from_u64(6);
        let mut rng = StdRng::seed_from_u64(7);
        let run = driver.run(&mut || nn.build(&mut arch), &mut rng);
        scores.push(run.records.last().unwrap().score);
    }
    // Per-round, consider maximizes over a superset of not-consider's single
    // candidate, measured on the same selection set.
    assert!(
        scores[0] >= scores[1] - 0.05,
        "consider {} should not lose clearly to not-consider {}",
        scores[0],
        scores[1]
    );
}

#[test]
fn transfer_learning_pipeline_runs_decentralized() {
    let (shards, test) = tiny_world(8);
    // Pretrain a backbone on a disjoint draw, freeze, extract features.
    let gen = SynthCifar::new(SynthCifarConfig::tiny());
    let mut pretext_rng = StdRng::seed_from_u64(9);
    let pretext = gen.sample(&mut pretext_rng, 20);
    let cfg = EffNetLiteConfig::tiny(test.feature_dim(), test.num_classes());
    let mut bb_rng = StdRng::seed_from_u64(10);
    let mut effnet = EffNetLite::pretrained(cfg, &pretext, &mut bb_rng);

    let head_shards: Vec<Dataset> = shards.iter().map(|s| effnet.extract_features(s)).collect();
    let head_test = effnet.extract_features(&test);
    let head_tests = vec![head_test.clone(), head_test.clone(), head_test.clone()];

    let config = DecentralizedConfig {
        rounds: 2,
        local_epochs: 2,
        batch_size: 16,
        difficulty: 200_000,
        compute: ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 500.0,
            contention: 0.2,
            batch_parallel: false,
        },
        payload_bytes: cfg.payload_bytes(),
        seed: 11,
        ..Default::default()
    };
    let driver = Decentralized::new(config, &head_shards, &head_tests);
    let mut head_rng = StdRng::seed_from_u64(12);
    let run = driver.run(&mut || {
        let mut m = blockfed::nn::Sequential::new();
        m.push(blockfed::nn::Linear::new(
            &mut head_rng,
            cfg.width,
            cfg.num_classes,
        ));
        m
    });
    assert_eq!(run.peer_records.len(), 3);
    for peer in &run.peer_records {
        assert_eq!(peer.len(), 2);
    }
    // The chain carried the *full* model payload (frozen weights included).
    assert!(run.chain.total_payload_bytes >= cfg.payload_bytes() * 6);
}

#[test]
fn async_policies_form_a_latency_ladder() {
    let (shards, test) = tiny_world(20);
    let tests = vec![test.clone(), test.clone(), test.clone()];
    let nn = SimpleNnConfig::tiny(test.feature_dim(), test.num_classes());
    let mut waits = Vec::new();
    for policy in [WaitPolicy::All, WaitPolicy::FirstK(1)] {
        let config = DecentralizedConfig {
            rounds: 2,
            local_epochs: 2,
            batch_size: 16,
            wait_policy: policy,
            difficulty: 100_000,
            // Slow, uneven training makes waiting visible.
            compute: ComputeProfile {
                hashrate: 100_000.0,
                train_rate: 5.0,
                contention: 0.2,
                batch_parallel: false,
            },
            payload_bytes: 10_000,
            seed: 21,
            ..Default::default()
        };
        let driver = Decentralized::new(config, &shards, &tests);
        let mut arch = StdRng::seed_from_u64(22);
        let run = driver.run(&mut || nn.build(&mut arch));
        waits.push(run.mean_wait());
    }
    assert!(
        waits[1] < waits[0],
        "wait-1 ({}) should wait less than wait-all ({})",
        waits[1],
        waits[0]
    );
}
