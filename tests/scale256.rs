//! The 256-peer unlock, end to end: announce/fetch gossip plus the
//! scratch-buffer flood router carry a cell at the combination mask's native
//! width. The cell must run green, confirm aggregates whose masks set bits
//! ≥ 128 (impossible under the old 128-peer ceiling), replay bit-identically
//! at any worker count, and keep flood traffic at the digest-sized
//! announce term instead of payload × edges.

use blockfed::fl::Strategy;
use blockfed::net::GossipMode;
use blockfed::scenario::{CellReport, DataSpec, ScenarioRunner, ScenarioSpec};

/// Serializes tests that flip the global thread override.
fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A 256-peer announce/fetch cell. `BestK(200)` keeps aggregation linear and
/// guarantees the chosen combination includes members past index 128: at
/// most 56 of the 200 members can sit below 128, so some mask bit ≥ 128 is
/// always set. Difficulty scales with the population so block cadence (and
/// the fork rate) stays at the 48-peer cell's level.
fn wide_spec() -> ScenarioSpec {
    ScenarioSpec::new("scale256", 256)
        .rounds(2)
        .consider_cutover(6, 200)
        .difficulty(200_000 * 256 / 48)
        .gossip(GossipMode::AnnounceFetch)
        .data(DataSpec::scaled_for(256))
        .seed(25_600)
}

#[test]
fn two_hundred_fifty_six_peer_cell_runs_green_with_wide_masks_at_any_thread_count() {
    let _g = thread_guard();
    let spec = wide_spec();
    assert_eq!(
        spec.resolved_strategy(),
        Strategy::BestK(200),
        "256 peers must resolve past the Consider→BestK cutover"
    );
    let run_at = |threads: usize| -> CellReport {
        blockfed::compute::set_threads(threads);
        let cell = ScenarioRunner::new().run(&spec);
        blockfed::compute::set_threads(0);
        cell
    };
    let single = run_at(1);
    // Green end to end: every peer aggregated every round.
    assert_eq!(single.records, 256 * 2, "rounds incomplete: {single:?}");
    assert!(single.mean_final_accuracy > 0.0);
    assert!(single.blocks > 0);
    // The on-chain masks addressed the upper half of the 256-bit domain.
    let widest = single.max_mask_bit.expect("aggregates recorded");
    assert!(
        widest >= 128,
        "no recorded combination mask crossed bit 128 (max {widest})"
    );
    // Announce/fetch split: flood traffic is the digest term, payload moves
    // as one targeted pull per peer — far below flooded payloads.
    assert!(single.fetch_bytes > 0);
    assert!(
        single.gossip_bytes < single.fetch_bytes,
        "announce floods must undercut the pulled payloads: gossip {} !< fetch {}",
        single.gossip_bytes,
        single.fetch_bytes
    );
    // Same seed, eight workers: bit-identical simulation (report equality
    // already excludes host wall-clock).
    let eight = run_at(8);
    assert_eq!(single, eight, "thread count changed the simulation");
}
